//! Full-cluster simulation harness: topology + switches + hosts +
//! controller, assembled and pumped together.
//!
//! [`Cluster`] is what experiments, examples and integration tests build
//! on. It wires:
//!
//! * the fat-tree topology and switch barrier logic (data plane),
//! * one [`HostLogic`] per server with its endpoints and synchronized
//!   clock,
//! * a **replicated controller** (§5.2): [`ClusterConfig::ctrl_replicas`]
//!   [`ReplicatedController`] replicas exchanging Raft traffic over the
//!   modelled management network, of which the elected leader drives
//!   recovery; controller replicas can be crashed or partitioned
//!   mid-recovery and a new leader re-drives in-flight failures,
//!
//! and interleaves simulator events with management-plane deliveries in
//! deterministic time order. Control requests from switches and hosts are
//! re-driven into the replicated log with capped exponential backoff
//! (at-least-once; the log's state machine dedupes), and every controller
//! action carries the emitting leader's epoch so hosts and switches fence
//! off deposed leaders.

use crate::config::EndpointConfig;
use crate::endpoint::Endpoint;
use crate::events::CtrlRequest;
use crate::simhost::{AppHook, DeliveryRecord, HostLogic};
use onepipe_clock::{ClockFleet, SyncDiscipline};
use onepipe_controller::protocol::{
    ActionDest, ControllerCore, CtrlAction, CtrlEvent, FailureDomains,
};
use onepipe_controller::raft::{RaftConfig, RaftMsg};
use onepipe_controller::replicated::ReplicatedController;
use onepipe_controller::retry::RetryPolicy;
use onepipe_netsim::engine::Sim;
use onepipe_netsim::topology::{FatTreeParams, NodeRole, Topology};
use onepipe_netsim::traffic::BackgroundTraffic;
use onepipe_switchlogic::switch::{
    Incarnation, SwitchConfig, SwitchEvent, SwitchLogic, SwitchShared,
};
use onepipe_types::ids::{HostId, LinkId, NodeId, ProcessId};
use onepipe_types::message::Message;
use onepipe_types::process_map::ProcessMap;
use onepipe_types::time::Timestamp;
use onepipe_types::wire::Datagram;
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::rc::Rc;
use std::sync::{Arc, Mutex};

/// Cluster-level configuration.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Topology parameters.
    pub topo: FatTreeParams,
    /// Total number of processes, placed round-robin over hosts.
    pub processes: usize,
    /// Switch configuration (incarnation, beacon interval, ...).
    pub switch: SwitchConfig,
    /// Endpoint configuration. `trust_data_barriers` is overridden to
    /// match the switch incarnation.
    pub endpoint: EndpointConfig,
    /// Use perfect clocks instead of the PTP model.
    pub perfect_clocks: bool,
    /// PTP discipline when clocks are imperfect.
    pub sync: SyncDiscipline,
    /// Master seed.
    pub seed: u64,
    /// One-way management-network delay (controller ↔ host), ns.
    pub mgmt_delay: u64,
    /// Controller send serialization per management message, ns — the
    /// paper reports recovery cost growing 3–15 µs per host because the
    /// controller "needs to contact all processes in the system" (§7.2).
    pub mgmt_serialize: u64,
    /// Number of controller replicas (§5.2: "replicated using Paxos or
    /// Raft"). With 3 replicas the service survives one crash.
    pub ctrl_replicas: usize,
    /// Simulation compute lanes. `0` runs the legacy single-queue engine;
    /// `n ≥ 1` runs the rack-sharded engine with `n` lanes (`1` = sharded
    /// but fully inline — the deterministic parallel reference; results
    /// are bit-identical for every `n ≥ 1`).
    pub threads: usize,
}

impl ClusterConfig {
    /// The paper's 32-server testbed with `processes` processes.
    pub fn testbed(processes: usize) -> Self {
        ClusterConfig {
            topo: FatTreeParams::testbed(),
            processes,
            switch: SwitchConfig::default(),
            endpoint: EndpointConfig::default(),
            perfect_clocks: false,
            sync: SyncDiscipline::default(),
            seed: 2021,
            mgmt_delay: 5_000,
            mgmt_serialize: 3_000,
            ctrl_replicas: 3,
            threads: 0,
        }
    }

    /// A single rack of `hosts` servers with `processes` processes.
    pub fn single_rack(hosts: u32, processes: usize) -> Self {
        ClusterConfig { topo: FatTreeParams::single_rack(hosts), ..Self::testbed(processes) }
    }
}

/// Observer hook for chaos campaigns: sees every delivery, user event and
/// periodic per-endpoint barrier snapshot across the whole cluster, in
/// deterministic time order. Unlike [`AppHook`] it cannot inject work —
/// it is a passive, continuously-checked oracle surface.
pub trait ChaosHook {
    /// A message was delivered to an application somewhere in the cluster.
    fn on_delivery(&mut self, _rec: &DeliveryRecord) {}

    /// A user event (send failure, recall, commit, failure callback) was
    /// surfaced on `proc`.
    fn on_user_event(&mut self, _at: u64, _proc: ProcessId, _ev: &crate::events::UserEvent) {}

    /// Periodic snapshot of one endpoint's `(best-effort, commit)` barrier
    /// pair, taken every [`Cluster::set_chaos_sample_stride`] nanoseconds.
    fn on_barrier_sample(
        &mut self,
        _at: u64,
        _proc: ProcessId,
        _be: Timestamp,
        _commit: Timestamp,
    ) {
    }

    /// A controller action reached its destination (after epoch fencing).
    /// `epoch` is the Raft term of the leader that emitted it; the oracle
    /// uses this to check exactly-once delivery per epoch.
    fn on_ctrl_action(&mut self, _at: u64, _epoch: u64, _action: &CtrlAction) {}
}

/// Default spacing of chaos barrier snapshots, ns.
const DEFAULT_CHAOS_SAMPLE_STRIDE: u64 = 10_000;

/// A management-network message in flight.
#[derive(Debug)]
enum MgmtMsg {
    /// A controller action travelling leader → host/switch, tagged with
    /// the emitting leader's epoch (Raft term) for stale-leader fencing.
    Action { epoch: u64, action: CtrlAction },
    /// Raft traffic between controller replicas.
    Raft { from: u32, to: u32, msg: RaftMsg },
    /// A control request travelling switch/host → controller cluster.
    /// Re-driven with capped exponential backoff until a leader accepts
    /// it — at-least-once delivery into the replicated log, which the
    /// state machine deduplicates.
    ToCtrl { ev: CtrlEvent, attempt: u32 },
    /// Forwarded datagram (controller fallback relay).
    Forward { dgram: Datagram },
    /// Chaos: crash controller replica `replica` at delivery time.
    CtrlCrash { replica: usize },
    /// Chaos: partition replica `replica` off the management network
    /// until absolute time `until`.
    CtrlPartition { replica: usize, until: u64 },
}

/// One controller replica plus its harness-side fault state.
struct CtrlReplica {
    ctrl: ReplicatedController,
    alive: bool,
    partitioned_until: u64,
}

impl CtrlReplica {
    fn reachable(&self, now: u64) -> bool {
        self.alive && now >= self.partitioned_until
    }
}

struct MgmtEntry {
    at: u64,
    seq: u64,
    msg: MgmtMsg,
}

impl PartialEq for MgmtEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for MgmtEntry {}
impl PartialOrd for MgmtEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MgmtEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The assembled simulated cluster.
pub struct Cluster {
    /// The discrete-event simulator.
    pub sim: Sim,
    /// The routing topology.
    pub topo: Arc<Topology>,
    /// Process placement.
    pub procs: Arc<ProcessMap>,
    /// All deliveries across the cluster, in delivery order.
    pub deliveries: Arc<Mutex<Vec<DeliveryRecord>>>,
    /// All user events raised across the cluster.
    pub user_events: Arc<Mutex<Vec<(u64, ProcessId, crate::events::UserEvent)>>>,
    switch_events: Arc<Mutex<Vec<SwitchEvent>>>,
    ctrl_outbox: Arc<Mutex<Vec<(u64, ProcessId, CtrlRequest)>>>,
    /// Sorted-prefix watermarks for the shared sinks (sharded mode): the
    /// tail past each mark is canonicalized by `sort_sink_tails`.
    sink_marks: [usize; 4],
    replicas: Vec<CtrlReplica>,
    /// Next time the controller replicas run their periodic tick (Raft
    /// timeouts + Determine-window expiry). Lets the per-event fast path
    /// skip the control plane entirely between ticks.
    next_ctrl_tick: u64,
    ctrl_tick_interval: u64,
    /// Backoff policy for [`MgmtMsg::ToCtrl`] re-delivery.
    ctrl_retry: RetryPolicy,
    /// Highest controller epoch seen per process / per switch — actions
    /// from lower epochs (a deposed leader) are fenced off.
    proc_epoch: HashMap<ProcessId, u64>,
    switch_epoch: HashMap<NodeId, u64>,
    /// Highest term observed with a leader, for election counting.
    last_leader_term: u64,
    mgmt: BinaryHeap<Reverse<MgmtEntry>>,
    mgmt_seq: u64,
    mgmt_delay: u64,
    mgmt_serialize: u64,
    delivery_cursor: usize,
    chaos: Option<Rc<RefCell<dyn ChaosHook>>>,
    chaos_delivery_cursor: usize,
    chaos_event_cursor: usize,
    chaos_sample_stride: u64,
    chaos_next_sample: u64,
    /// The cluster configuration it was built with.
    pub config: ClusterConfig,
}

impl Cluster {
    /// Build a cluster.
    pub fn new(mut cfg: ClusterConfig) -> Self {
        // Barrier trust must match the switch incarnation (§6.2.2).
        cfg.endpoint.trust_data_barriers = matches!(cfg.switch.incarnation, Incarnation::Chip);

        let mut sim = Sim::new(cfg.seed);
        let topo = Arc::new(Topology::build(&mut sim, cfg.topo.clone()));
        let n_hosts = topo.num_hosts();
        let procs = Arc::new(ProcessMap::place_round_robin(n_hosts, cfg.processes));

        let switch_events = Arc::new(Mutex::new(Vec::new()));
        let shared = SwitchShared {
            topo: topo.clone(),
            procs: procs.clone(),
            events: switch_events.clone(),
        };
        for &s in &topo.switch_nodes {
            sim.set_logic(s, Box::new(SwitchLogic::new(shared.clone(), cfg.switch)));
        }

        let mut clocks = if cfg.perfect_clocks {
            ClockFleet::perfect(n_hosts)
        } else {
            ClockFleet::new(n_hosts, cfg.sync, cfg.seed ^ 0xC10C)
        };

        let deliveries = Arc::new(Mutex::new(Vec::new()));
        let ctrl_outbox = Arc::new(Mutex::new(Vec::new()));
        let user_events = Arc::new(Mutex::new(Vec::new()));
        for h in 0..n_hosts {
            let host = HostId(h as u32);
            let endpoints: Vec<Endpoint> = procs
                .processes_on(host)
                .iter()
                .map(|&p| {
                    let mut ecfg = cfg.endpoint;
                    ecfg.seed = cfg.seed;
                    Endpoint::new(p, ecfg)
                })
                .collect();
            let mut logic = HostLogic::new(
                host,
                topo.tor_up_of(host),
                clocks.clock_mut(h).clone(),
                endpoints,
                cfg.switch.beacon_interval,
                deliveries.clone(),
                ctrl_outbox.clone(),
                user_events.clone(),
            );
            logic.synchronized_beacons = cfg.switch.synchronized_beacons;
            sim.set_logic(topo.host_node(host), Box::new(logic));
        }

        let domains = build_failure_domains(&topo, &procs);
        // Raft timing in units of the management-network delay: elections
        // resolve within ~10 one-way delays, heartbeats every 2.
        let mgmt_delay = cfg.mgmt_delay.max(1);
        let raft_cfg =
            RaftConfig { election_timeout: 10 * mgmt_delay, heartbeat_interval: 2 * mgmt_delay };
        let n_ctrl = cfg.ctrl_replicas.max(1) as u32;
        let replicas = (0..n_ctrl)
            .map(|i| CtrlReplica {
                ctrl: ReplicatedController::new(
                    i,
                    (0..n_ctrl).filter(|&p| p != i).collect(),
                    raft_cfg,
                    domains.clone(),
                    procs.all(),
                ),
                alive: true,
                partitioned_until: 0,
            })
            .collect();
        // Re-drive control requests for ~10 backoff rounds; the span
        // comfortably covers a leader election (10 one-way delays) plus
        // commit latency.
        let ctrl_retry =
            RetryPolicy { base: 2 * mgmt_delay, cap: 20 * mgmt_delay, max_attempts: 10 };

        if cfg.threads > 0 {
            // Rack-sharded parallel engine: one shard per rack subtree
            // (see `Topology::partition`), `threads` compute lanes.
            sim.set_partition(topo.partition(), cfg.threads);
        }

        Cluster {
            sim,
            topo,
            procs,
            deliveries,
            user_events,
            switch_events,
            ctrl_outbox,
            replicas,
            next_ctrl_tick: 0,
            ctrl_tick_interval: mgmt_delay,
            ctrl_retry,
            proc_epoch: HashMap::new(),
            switch_epoch: HashMap::new(),
            last_leader_term: 0,
            mgmt: BinaryHeap::new(),
            mgmt_seq: 0,
            mgmt_delay: cfg.mgmt_delay,
            mgmt_serialize: cfg.mgmt_serialize,
            delivery_cursor: 0,
            sink_marks: [0; 4],
            chaos: None,
            chaos_delivery_cursor: 0,
            chaos_event_cursor: 0,
            chaos_sample_stride: DEFAULT_CHAOS_SAMPLE_STRIDE,
            chaos_next_sample: 0,
            config: cfg,
        }
    }

    /// Attach a chaos observer; it starts seeing deliveries, user events
    /// and barrier snapshots from the current time on.
    pub fn set_chaos(&mut self, hook: Rc<RefCell<dyn ChaosHook>>) {
        self.chaos_delivery_cursor = self.deliveries.lock().unwrap().len();
        self.chaos_event_cursor = self.user_events.lock().unwrap().len();
        self.chaos_next_sample = self.sim.now();
        self.chaos = Some(hook);
    }

    /// Change the spacing of chaos barrier snapshots (ns).
    pub fn set_chaos_sample_stride(&mut self, stride: u64) {
        assert!(stride > 0);
        self.chaos_sample_stride = stride;
    }

    /// Attach a shared application hook to every host.
    pub fn set_app(&mut self, app: Arc<Mutex<dyn AppHook>>) {
        for h in 0..self.topo.num_hosts() {
            let node = self.topo.host_node(HostId(h as u32));
            let app = app.clone();
            self.sim.with_node(node, move |logic, _| {
                logic.as_any_mut().unwrap().downcast_mut::<HostLogic>().unwrap().set_app(app);
            });
        }
    }

    /// Attach background traffic to a host (Figure 12 experiments).
    pub fn set_traffic(&mut self, host: HostId, traffic: BackgroundTraffic) {
        let node = self.topo.host_node(host);
        self.sim.with_node(node, move |logic, _| {
            logic.as_any_mut().unwrap().downcast_mut::<HostLogic>().unwrap().set_traffic(traffic);
        });
    }

    /// Send a scattering from `from` at the current simulation time.
    /// Returns the message timestamp assigned by the sender's clock.
    pub fn send(
        &mut self,
        from: ProcessId,
        msgs: Vec<Message>,
        reliable: bool,
    ) -> onepipe_types::Result<Timestamp> {
        let host = self.procs.host_of(from).ok_or(onepipe_types::Error::UnknownProcess(from))?;
        let node = self.topo.host_node(host);
        self.sim
            .with_node(node, |logic, ctx| {
                logic
                    .as_any_mut()
                    .unwrap()
                    .downcast_mut::<HostLogic>()
                    .unwrap()
                    .send_from(ctx, from, msgs, reliable)
            })
            .unwrap_or(Err(onepipe_types::Error::ProcessFailed(from)))
    }

    /// Like [`send`](Self::send), additionally returning the scattering
    /// sequence number so a chaos oracle can register the intended
    /// receiver set under `(sender, seq)`.
    pub fn send_traced(
        &mut self,
        from: ProcessId,
        msgs: Vec<Message>,
        reliable: bool,
    ) -> onepipe_types::Result<(Timestamp, u64)> {
        let host = self.procs.host_of(from).ok_or(onepipe_types::Error::UnknownProcess(from))?;
        let node = self.topo.host_node(host);
        self.sim
            .with_node(node, |logic, ctx| {
                logic
                    .as_any_mut()
                    .unwrap()
                    .downcast_mut::<HostLogic>()
                    .unwrap()
                    .send_from_traced(ctx, from, msgs, reliable)
            })
            .unwrap_or(Err(onepipe_types::Error::ProcessFailed(from)))
    }

    /// Run until simulation time `t_end`, pumping the control plane.
    ///
    /// On the legacy engine the control plane is pumped after every
    /// simulator event; on the sharded engine
    /// ([`ClusterConfig::threads`] ≥ 1) it is pumped at every window
    /// barrier — windows are bounded by the lookahead horizon and never
    /// cross a pending management delivery, and all barrier times are
    /// deterministic, so runs remain bit-identical for any lane count.
    pub fn run_until(&mut self, t_end: u64) {
        let sharded = self.sim.is_sharded();
        loop {
            self.sort_sink_tails();
            self.pump_control();
            self.pump_chaos();
            let sim_next = self.sim.peek_time();
            let mgmt_next = self.mgmt.peek().map(|Reverse(e)| e.at);
            let next = match (sim_next, mgmt_next) {
                (None, None) => break,
                (Some(s), None) => s,
                (None, Some(m)) => m,
                (Some(s), Some(m)) => s.min(m),
            };
            if next > t_end {
                break;
            }
            if mgmt_next.map(|m| m <= next).unwrap_or(false) {
                let Reverse(entry) = self.mgmt.pop().unwrap();
                self.sim.run_until(entry.at);
                self.sort_sink_tails();
                self.apply_mgmt(entry.msg);
            } else if sharded {
                // One lookahead window, fenced at the next management
                // delivery so control actions land between windows.
                let cap = mgmt_next.map_or(t_end, |m| m.min(t_end));
                self.sim.run_window(cap);
            } else {
                self.sim.step();
            }
        }
        self.sim.run_until(t_end);
        self.sort_sink_tails();
        self.pump_control();
        self.pump_chaos();
    }

    /// Canonicalize the unsorted tail of each shared sink by
    /// `(time, owner)`. In sharded mode worker lanes push into the sinks
    /// concurrently, so arrival order is nondeterministic *across*
    /// owners; entries with equal keys always come from one host — one
    /// shard, executed serially — and the stable sort keeps their
    /// relative order, so the result is a pure function of the
    /// simulation. No-op on the legacy engine (its order is already
    /// deterministic and pinned by existing goldens).
    fn sort_sink_tails(&mut self) {
        if !self.sim.is_sharded() {
            return;
        }
        {
            let mut d = self.deliveries.lock().unwrap();
            let from = self.sink_marks[0].min(d.len());
            d[from..].sort_by_key(|r| (r.at, r.receiver.0));
            self.sink_marks[0] = d.len();
        }
        {
            let mut e = self.user_events.lock().unwrap();
            let from = self.sink_marks[1].min(e.len());
            e[from..].sort_by_key(|(at, p, _)| (*at, p.0));
            self.sink_marks[1] = e.len();
        }
        {
            let mut e = self.switch_events.lock().unwrap();
            let from = self.sink_marks[2].min(e.len());
            e[from..].sort_by_key(|ev| {
                let SwitchEvent::InLinkDead { switch, from, at, .. } = ev;
                (*at, switch.0, from.0)
            });
            self.sink_marks[2] = e.len();
        }
        {
            let mut e = self.ctrl_outbox.lock().unwrap();
            let from = self.sink_marks[3].min(e.len());
            e[from..].sort_by_key(|(at, p, _)| (*at, p.0));
            self.sink_marks[3] = e.len();
        }
    }

    /// Run for `dt` more nanoseconds.
    pub fn run_for(&mut self, dt: u64) {
        self.run_until(self.sim.now() + dt);
    }

    /// Deliveries recorded since the last call.
    pub fn take_deliveries(&mut self) -> Vec<DeliveryRecord> {
        self.sort_sink_tails();
        let all = self.deliveries.lock().unwrap();
        let out = all[self.delivery_cursor..].to_vec();
        self.delivery_cursor = all.len();
        drop(all);
        out
    }

    /// Crash an entire host at absolute time `at`.
    pub fn crash_host(&mut self, at: u64, host: HostId) {
        self.sim.schedule_crash(at, self.topo.host_node(host));
    }

    /// Crash a physical ToR switch (both logical halves).
    pub fn crash_tor(&mut self, at: u64, pod: u32, idx: u32) {
        for (i, role) in self.topo.roles.iter().enumerate() {
            match *role {
                NodeRole::TorUp { pod: p, idx: i2 } | NodeRole::TorDown { pod: p, idx: i2 }
                    if p == pod && i2 == idx =>
                {
                    self.sim.schedule_crash(at, NodeId(i as u32));
                }
                _ => {}
            }
        }
    }

    /// Crash a physical core switch.
    pub fn crash_core(&mut self, at: u64, idx: u32) {
        for (i, role) in self.topo.roles.iter().enumerate() {
            if matches!(*role, NodeRole::Core { idx: i2 } if i2 == idx) {
                self.sim.schedule_crash(at, NodeId(i as u32));
            }
        }
    }

    /// Take a host's access link down — or back up — in both directions.
    pub fn set_host_link(&mut self, at: u64, host: HostId, up: bool) {
        let hn = self.topo.host_node(host);
        let tor_up = self.topo.tor_up_of(host);
        let tor_down = self.sim.in_neighbors(hn).first().copied().expect("host has a downlink");
        for link in [LinkId::new(hn, tor_up), LinkId::new(tor_down, hn)] {
            if up {
                self.sim.schedule_link_up(at, link);
            } else {
                self.sim.schedule_link_down(at, link);
            }
        }
    }

    /// Take a core-adjacent fabric link down (both directions).
    pub fn fail_core_link(&mut self, at: u64, core_idx: u32) {
        let core = self
            .topo
            .roles
            .iter()
            .position(|r| matches!(*r, NodeRole::Core { idx } if idx == core_idx))
            .map(|i| NodeId(i as u32))
            .expect("core exists");
        // First inbound spine link.
        let spine = self.sim.in_neighbors(core).first().copied().expect("core has inputs");
        self.sim.schedule_link_admin(at, LinkId::new(spine, core), false);
        self.sim.schedule_link_admin(at, LinkId::new(core, spine), false);
    }

    /// Access a host's logic (downcast helper).
    pub fn with_host<R>(
        &mut self,
        host: HostId,
        f: impl FnOnce(&mut HostLogic, &mut onepipe_netsim::engine::Ctx<'_>) -> R,
    ) -> Option<R> {
        let node = self.topo.host_node(host);
        self.sim.with_node(node, |logic, ctx| {
            f(logic.as_any_mut().unwrap().downcast_mut::<HostLogic>().unwrap(), ctx)
        })
    }

    /// The authoritative controller state machine to report from: the
    /// alive leader when one exists, otherwise any alive replica (they
    /// agree on everything committed), otherwise replica 0's last state.
    fn authoritative_core(&self) -> &ControllerCore {
        let idx = self
            .controller_leader()
            .or_else(|| self.replicas.iter().position(|r| r.alive))
            .unwrap_or(0);
        self.replicas[idx].ctrl.core()
    }

    /// The index of the current alive controller leader, if any. With
    /// competing stale leaders (possible transiently across a partition)
    /// the highest epoch wins.
    pub fn controller_leader(&self) -> Option<usize> {
        self.replicas
            .iter()
            .enumerate()
            .filter(|(_, r)| r.alive && r.ctrl.is_leader())
            .max_by_key(|(_, r)| r.ctrl.epoch())
            .map(|(i, _)| i)
    }

    /// The highest controller epoch (Raft term) among alive replicas.
    pub fn controller_epoch(&self) -> u64 {
        self.replicas.iter().filter(|r| r.alive).map(|r| r.ctrl.epoch()).max().unwrap_or(0)
    }

    /// Crash controller replica `replica` at absolute time `at`.
    pub fn crash_controller(&mut self, at: u64, replica: usize) {
        assert!(replica < self.replicas.len());
        self.push_mgmt(at, MgmtMsg::CtrlCrash { replica });
    }

    /// Partition controller replica `replica` off the management network
    /// for `duration` ns starting at absolute time `at`.
    pub fn partition_controller(&mut self, at: u64, replica: usize, duration: u64) {
        assert!(replica < self.replicas.len());
        self.push_mgmt(at, MgmtMsg::CtrlPartition { replica, until: at.saturating_add(duration) });
    }

    /// The controller's view of failed processes.
    pub fn failed_processes(&self) -> Vec<(ProcessId, Timestamp)> {
        self.authoritative_core().failures().collect()
    }

    /// Failure-handling still in flight at the controller: for each pending
    /// failure, `(announce_id, expected, completed)` callback sets
    /// (telemetry / chaos triage).
    pub fn controller_pending(&self) -> Vec<(Option<u64>, Vec<ProcessId>, Vec<ProcessId>)> {
        self.authoritative_core()
            .pending_failures()
            .map(|p| {
                (
                    p.announce_id,
                    p.expected.iter().copied().collect(),
                    p.completed.iter().copied().collect(),
                )
            })
            .collect()
    }

    /// Aggregate endpoint statistics across all (live) hosts.
    pub fn total_stats(&mut self) -> crate::endpoint::EndpointStats {
        let mut total = crate::endpoint::EndpointStats::default();
        for h in 0..self.topo.num_hosts() {
            let host = HostId(h as u32);
            let stats = self
                .with_host(host, |hl, _| hl.endpoints.iter().map(|e| e.stats).collect::<Vec<_>>());
            if let Some(stats) = stats {
                for s in stats {
                    total.scatterings_sent += s.scatterings_sent;
                    total.packets_sent += s.packets_sent;
                    total.retransmits += s.retransmits;
                    total.delivered_be += s.delivered_be;
                    total.delivered_rel += s.delivered_rel;
                    total.send_failures += s.send_failures;
                    total.commits_sent += s.commits_sent;
                    total.rx_dropped += s.rx_dropped;
                    total.late_drops += s.late_drops;
                    total.commit_anomalies += s.commit_anomalies;
                }
            }
        }
        total
    }

    /// Feed new deliveries, user events and due barrier snapshots to the
    /// chaos hook. Called between simulator events so the oracle observes
    /// the run continuously, not just at test end.
    fn pump_chaos(&mut self) {
        let Some(hook) = self.chaos.clone() else { return };
        // Deliveries since the last pump (cloned out so the hook can't
        // observe a live borrow of the shared log).
        let new_d: Vec<DeliveryRecord> = {
            let all = self.deliveries.lock().unwrap();
            all[self.chaos_delivery_cursor..].to_vec()
        };
        self.chaos_delivery_cursor += new_d.len();
        {
            let mut h = hook.borrow_mut();
            for rec in &new_d {
                h.on_delivery(rec);
            }
        }
        let new_e: Vec<(u64, ProcessId, crate::events::UserEvent)> = {
            let all = self.user_events.lock().unwrap();
            all[self.chaos_event_cursor..].to_vec()
        };
        self.chaos_event_cursor += new_e.len();
        {
            let mut h = hook.borrow_mut();
            for (at, p, ev) in &new_e {
                h.on_user_event(*at, *p, ev);
            }
        }
        let now = self.sim.now();
        if now >= self.chaos_next_sample {
            for hidx in 0..self.topo.num_hosts() {
                let host = HostId(hidx as u32);
                let samples = self.with_host(host, |hl, _| {
                    hl.endpoints.iter().map(|e| (e.id(), e.barriers())).collect::<Vec<_>>()
                });
                if let Some(samples) = samples {
                    let mut h = hook.borrow_mut();
                    for (p, (be, commit)) in samples {
                        h.on_barrier_sample(now, p, be, commit);
                    }
                }
            }
            self.chaos_next_sample = now + self.chaos_sample_stride;
        }
    }

    // ------------------------------------------------------------------
    // Control plane pumping
    // ------------------------------------------------------------------

    fn push_mgmt(&mut self, at: u64, msg: MgmtMsg) {
        self.mgmt_seq += 1;
        self.mgmt.push(Reverse(MgmtEntry { at, seq: self.mgmt_seq, msg }));
    }

    fn pump_control(&mut self) {
        // Fast path: the harness pumps once per simulated event, so the
        // common case (no detect reports, no endpoint requests, and the
        // next replica tick still in the future) must not pay for drains
        // or controller work. Raft traffic itself rides the management
        // heap and is handled in `apply_mgmt`, not here.
        let now = self.sim.now();
        if now < self.next_ctrl_tick
            && self.switch_events.lock().unwrap().is_empty()
            && self.ctrl_outbox.lock().unwrap().is_empty()
        {
            return;
        }
        // Switch detect reports: one management hop to the controller
        // cluster, then re-driven until a leader commits them.
        let events: Vec<SwitchEvent> = self.switch_events.lock().unwrap().drain(..).collect();
        self.sink_marks[2] = 0;
        for ev in events {
            let SwitchEvent::InLinkDead { switch, from, last_commit, at } = ev;
            self.push_mgmt(
                now + self.mgmt_delay,
                MgmtMsg::ToCtrl {
                    ev: CtrlEvent::Detect { reporter: switch, dead: from, last_commit, at },
                    attempt: 0,
                },
            );
        }
        // Endpoint control requests: same path.
        let reqs: Vec<(u64, ProcessId, CtrlRequest)> =
            self.ctrl_outbox.lock().unwrap().drain(..).collect();
        self.sink_marks[3] = 0;
        for (_raised_at, from, req) in reqs {
            let ev = match req {
                CtrlRequest::CallbackComplete { announce_id } => {
                    CtrlEvent::CallbackComplete { announce_id, from }
                }
                CtrlRequest::UndeliverableRecall { to, ts, seq } => {
                    CtrlEvent::UndeliverableRecall { to, ts, seq, sender: from }
                }
                CtrlRequest::Forward { dgram } => {
                    // Controller relays after two management hops. Best
                    // effort: the relay does not touch the replicated log.
                    self.push_mgmt(now + 2 * self.mgmt_delay, MgmtMsg::Forward { dgram });
                    continue;
                }
            };
            self.push_mgmt(now + self.mgmt_delay, MgmtMsg::ToCtrl { ev, attempt: 0 });
        }
        // Periodic replica tick: Raft timeouts/heartbeats and Determine-
        // window expiry. Partitioned replicas keep ticking (their local
        // clock runs) but their traffic is dropped at the edge.
        if now >= self.next_ctrl_tick {
            self.next_ctrl_tick = now + self.ctrl_tick_interval;
            for i in 0..self.replicas.len() {
                if !self.replicas[i].alive {
                    continue;
                }
                let (msgs, actions) = self.replicas[i].ctrl.tick(now);
                let epoch = self.replicas[i].ctrl.epoch();
                self.route_raft(now, i, msgs);
                self.route_actions(now, i, epoch, actions);
            }
            self.note_leadership();
        }
    }

    /// Queue Raft messages emitted by replica `from`; dropped wholesale if
    /// the emitter is dead or partitioned.
    fn route_raft(&mut self, now: u64, from: usize, msgs: Vec<(u32, RaftMsg)>) {
        if !self.replicas[from].reachable(now) {
            return;
        }
        for (to, msg) in msgs {
            self.push_mgmt(now + self.mgmt_delay, MgmtMsg::Raft { from: from as u32, to, msg });
        }
    }

    /// Queue controller actions emitted by replica `from`, tagged with its
    /// epoch. Announcements pay the per-message serialization cost
    /// (contacting every correct process costs CPU/network time, §7.2).
    fn route_actions(&mut self, now: u64, from: usize, epoch: u64, actions: Vec<CtrlAction>) {
        if actions.is_empty() || !self.replicas[from].reachable(now) {
            return;
        }
        let mut out_idx = 0u64;
        for action in actions {
            let delay = match action.dest() {
                ActionDest::Process(_) => {
                    out_idx += 1;
                    self.mgmt_delay + out_idx * self.mgmt_serialize
                }
                ActionDest::Switch(_) => self.mgmt_delay,
            };
            self.push_mgmt(now + delay, MgmtMsg::Action { epoch, action });
        }
    }

    /// Count leader elections: the first time any alive replica is seen
    /// leading a term newer than every previously-led term.
    fn note_leadership(&mut self) {
        for r in &self.replicas {
            if r.alive && r.ctrl.is_leader() && r.ctrl.epoch() > self.last_leader_term {
                self.last_leader_term = r.ctrl.epoch();
                self.sim.stats.ctrl_elections += 1;
            }
        }
    }

    /// The replica to submit control requests to: a reachable leader,
    /// preferring the highest epoch if stale leaders linger.
    fn reachable_leader(&self, now: u64) -> Option<usize> {
        self.replicas
            .iter()
            .enumerate()
            .filter(|(_, r)| r.reachable(now) && r.ctrl.is_leader())
            .max_by_key(|(_, r)| r.ctrl.epoch())
            .map(|(i, _)| i)
    }

    fn apply_mgmt(&mut self, msg: MgmtMsg) {
        match msg {
            MgmtMsg::Action { epoch, action } => self.apply_ctrl_action(epoch, action),
            MgmtMsg::Raft { from, to, msg } => {
                let now = self.sim.now();
                let to = to as usize;
                // In-flight messages from a replica that died after sending
                // still arrive; a dead or partitioned *receiver* does not
                // take delivery.
                if !self.replicas[to].reachable(now) {
                    return;
                }
                let (msgs, actions) = self.replicas[to].ctrl.on_raft_msg(from, msg, now);
                let epoch = self.replicas[to].ctrl.epoch();
                self.route_raft(now, to, msgs);
                self.route_actions(now, to, epoch, actions);
                self.note_leadership();
            }
            MgmtMsg::ToCtrl { ev, attempt } => {
                let now = self.sim.now();
                let accepted = match self.reachable_leader(now) {
                    Some(i) => self.replicas[i].ctrl.submit(ev.clone()),
                    None => false,
                };
                // Even an accepted proposal can die with its leader before
                // committing, so requests are re-driven with capped
                // exponential backoff until the budget runs out; the
                // replicated state machine deduplicates (at-least-once on
                // the wire, exactly-once in effect).
                let next = attempt + 1;
                if !accepted {
                    self.sim.stats.ctrl_retries += 1;
                }
                if !self.ctrl_retry.exhausted(next) {
                    let delay = self.ctrl_retry.delay(next).max(self.mgmt_delay);
                    self.push_mgmt(now + delay, MgmtMsg::ToCtrl { ev, attempt: next });
                } else if !accepted {
                    self.sim.stats.ctrl_drops += 1;
                }
            }
            MgmtMsg::CtrlCrash { replica } => {
                if self.replicas[replica].alive {
                    self.replicas[replica].alive = false;
                    self.sim.stats.faults_ctrl_crashes += 1;
                }
            }
            MgmtMsg::CtrlPartition { replica, until } => {
                if self.replicas[replica].alive {
                    self.replicas[replica].partitioned_until = until;
                    self.sim.stats.faults_ctrl_partitions += 1;
                }
            }
            MgmtMsg::Forward { dgram } => {
                let Some(host) = self.procs.host_of(dgram.dst) else { return };
                let node = self.topo.host_node(host);
                self.sim.with_node(node, |logic, ctx| {
                    logic
                        .as_any_mut()
                        .unwrap()
                        .downcast_mut::<HostLogic>()
                        .unwrap()
                        .deliver_forwarded(ctx, dgram);
                });
            }
        }
    }

    /// Deliver an epoch-tagged controller action to its destination,
    /// fencing off actions from deposed leaders.
    fn apply_ctrl_action(&mut self, epoch: u64, action: CtrlAction) {
        let now = self.sim.now();
        let fenced = match action.dest() {
            ActionDest::Process(p) => {
                let e = self.proc_epoch.entry(p).or_insert(0);
                let stale = epoch < *e;
                *e = (*e).max(epoch);
                stale
            }
            ActionDest::Switch(s) => {
                let e = self.switch_epoch.entry(s).or_insert(0);
                let stale = epoch < *e;
                *e = (*e).max(epoch);
                stale
            }
        };
        if fenced {
            return;
        }
        if let Some(hook) = self.chaos.clone() {
            hook.borrow_mut().on_ctrl_action(now, epoch, &action);
        }
        match action {
            CtrlAction::Announce { id, to, failures } => {
                let Some(host) = self.procs.host_of(to) else { return };
                let node = self.topo.host_node(host);
                self.sim.with_node(node, |logic, ctx| {
                    logic
                        .as_any_mut()
                        .unwrap()
                        .downcast_mut::<HostLogic>()
                        .unwrap()
                        .deliver_announcement(ctx, to, id, &failures);
                });
            }
            CtrlAction::Resume { at, input } => {
                // The reporting switch drops exactly the reported dead
                // input link from its commit aggregation (§5.2 Resume).
                self.sim.with_node(at, |logic, ctx| {
                    if let Some(any) = logic.as_any_mut() {
                        if let Some(sw) = any.downcast_mut::<SwitchLogic>() {
                            sw.remove_commit_input(input);
                            let _ = ctx;
                        }
                    }
                });
            }
            CtrlAction::RecoveryInfo { .. } => { /* receiver recovery: not routed in-sim */ }
        }
    }
}

/// Map the topology onto controller failure domains.
fn build_failure_domains(topo: &Topology, procs: &ProcessMap) -> FailureDomains {
    let mut domains = FailureDomains::default();
    let mut next_comp = 0u32;
    // Hosts.
    for h in 0..topo.num_hosts() {
        let host = HostId(h as u32);
        domains.add_component(
            next_comp,
            vec![topo.host_node(host)],
            procs.processes_on(host).to_vec(),
        );
        next_comp += 1;
    }
    // Physical switches: group up/down halves.
    use std::collections::HashMap;
    let mut tors: HashMap<(u32, u32), Vec<NodeId>> = HashMap::new();
    let mut spines: HashMap<(u32, u32), Vec<NodeId>> = HashMap::new();
    let mut cores: HashMap<u32, Vec<NodeId>> = HashMap::new();
    for (i, role) in topo.roles.iter().enumerate() {
        let n = NodeId(i as u32);
        match *role {
            NodeRole::TorUp { pod, idx } | NodeRole::TorDown { pod, idx } => {
                tors.entry((pod, idx)).or_default().push(n)
            }
            NodeRole::SpineUp { pod, idx } | NodeRole::SpineDown { pod, idx } => {
                spines.entry((pod, idx)).or_default().push(n)
            }
            NodeRole::Core { idx } => cores.entry(idx).or_default().push(n),
            NodeRole::Host(_) => continue,
        };
    }
    let mut tor_list: Vec<_> = tors.into_iter().collect();
    tor_list.sort_by_key(|(k, _)| *k);
    for ((pod, idx), nodes) in tor_list {
        // Single-homed racks: a dead ToR kills every process in the rack.
        let first_host = (pod * topo.params.tors_per_pod + idx) * topo.params.hosts_per_tor;
        let mut killed = Vec::new();
        for h in first_host..first_host + topo.params.hosts_per_tor {
            killed.extend_from_slice(procs.processes_on(HostId(h)));
        }
        domains.add_component(next_comp, nodes, killed);
        next_comp += 1;
    }
    let mut spine_list: Vec<_> = spines.into_iter().collect();
    spine_list.sort_by_key(|(k, _)| *k);
    for (_, nodes) in spine_list {
        domains.add_component(next_comp, nodes, Vec::new());
        next_comp += 1;
    }
    let mut core_list: Vec<_> = cores.into_iter().collect();
    core_list.sort_by_key(|(k, _)| *k);
    for (_, nodes) in core_list {
        domains.add_component(next_comp, nodes, Vec::new());
        next_comp += 1;
    }
    domains
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use onepipe_types::time::MICROS;

    #[test]
    fn best_effort_delivery_across_rack() {
        let mut c = Cluster::new(ClusterConfig::single_rack(4, 4));
        c.run_for(50 * MICROS); // let barriers start flowing
        c.send(ProcessId(0), vec![Message::new(ProcessId(3), "hi")], false).unwrap();
        c.run_for(100 * MICROS);
        let d = c.take_deliveries();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].receiver, ProcessId(3));
        assert_eq!(d[0].msg.payload, Bytes::from_static(b"hi"));
        assert!(!d[0].reliable);
    }

    #[test]
    fn reliable_delivery_across_pods() {
        let mut c = Cluster::new(ClusterConfig::testbed(32));
        c.run_for(50 * MICROS);
        // Process 0 (host 0, pod 0) to process 31 (host 31, pod 1).
        c.send(ProcessId(0), vec![Message::new(ProcessId(31), "cross-pod")], true).unwrap();
        c.run_for(200 * MICROS);
        let d = c.take_deliveries();
        assert_eq!(d.len(), 1);
        assert!(d[0].reliable);
        assert_eq!(d[0].msg.payload, Bytes::from_static(b"cross-pod"));
    }

    #[test]
    fn total_order_is_consistent_across_receivers() {
        let mut c = Cluster::new(ClusterConfig::single_rack(8, 8));
        c.run_for(50 * MICROS);
        // Every process scatters to two receivers; both receivers must see
        // all scatterings in the same relative order.
        for round in 0..5 {
            for p in 0..6u32 {
                let payload = format!("{p}-{round}");
                c.send(
                    ProcessId(p),
                    vec![
                        Message::new(ProcessId(6), payload.clone()),
                        Message::new(ProcessId(7), payload),
                    ],
                    false,
                )
                .unwrap();
            }
            c.run_for(10 * MICROS);
        }
        c.run_for(300 * MICROS);
        let d = c.take_deliveries();
        let seen_by = |r: u32| -> Vec<Bytes> {
            d.iter()
                .filter(|rec| rec.receiver == ProcessId(r))
                .map(|rec| rec.msg.payload.clone())
                .collect()
        };
        let a = seen_by(6);
        let b = seen_by(7);
        assert_eq!(a.len(), 30, "all 30 scatterings delivered to p6");
        assert_eq!(a, b, "both receivers must deliver in the same order");
        // And the order must be the total (ts, sender, seq) order.
        let mut keys: Vec<_> = d
            .iter()
            .filter(|rec| rec.receiver == ProcessId(6))
            .map(|rec| rec.msg.order_key())
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "delivery order must match the total order");
        keys.dedup();
        assert_eq!(keys.len(), 30, "no duplicates");
    }

    #[test]
    fn host_failure_recovery_end_to_end() {
        let mut c = Cluster::new(ClusterConfig::single_rack(4, 4));
        c.run_for(50 * MICROS);
        // A reliable message flows normally.
        c.send(ProcessId(0), vec![Message::new(ProcessId(1), "pre")], true).unwrap();
        c.run_for(100 * MICROS);
        assert_eq!(c.take_deliveries().len(), 1);
        // Kill host 3 (process 3).
        let t_crash = c.sim.now();
        c.crash_host(t_crash + 1, HostId(3));
        c.run_for(500 * MICROS);
        // Controller announced the failure.
        let failed = c.failed_processes();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].0, ProcessId(3));
        // The survivors keep making progress afterwards.
        c.send(ProcessId(0), vec![Message::new(ProcessId(1), "post")], true).unwrap();
        c.run_for(300 * MICROS);
        let d = c.take_deliveries();
        assert!(
            d.iter().any(|r| r.msg.payload == Bytes::from_static(b"post")),
            "reliable delivery must resume after recovery"
        );
    }

    #[test]
    fn controller_failover_mid_recovery_still_resumes() {
        let mut c = Cluster::new(ClusterConfig::single_rack(4, 4));
        c.run_for(100 * MICROS);
        let old_leader = c.controller_leader().expect("initial election completed");
        assert!(c.sim.stats.ctrl_elections >= 1);
        // Kill host 3, then kill the controller leader while the failure
        // is still being handled (detect/announce in flight).
        let t = c.sim.now();
        c.crash_host(t + 1, HostId(3));
        c.crash_controller(t + 40 * MICROS, old_leader);
        c.run_for(800 * MICROS);
        assert_eq!(c.sim.stats.faults_ctrl_crashes, 1);
        // A new leader finished the recovery the old one started.
        let new_leader = c.controller_leader().expect("new leader elected");
        assert_ne!(new_leader, old_leader);
        let failed = c.failed_processes();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].0, ProcessId(3));
        assert!(c.controller_pending().is_empty(), "recovery completed across failover");
        // Reliable sends work again after Resume.
        c.send(ProcessId(0), vec![Message::new(ProcessId(1), "post")], true).unwrap();
        c.run_for(300 * MICROS);
        let d = c.take_deliveries();
        assert!(
            d.iter().any(|r| r.msg.payload == Bytes::from_static(b"post")),
            "reliable delivery must resume after controller failover"
        );
    }

    #[test]
    fn controller_partition_heals_and_recovery_completes() {
        let mut c = Cluster::new(ClusterConfig::single_rack(4, 4));
        c.run_for(100 * MICROS);
        let leader = c.controller_leader().expect("initial election completed");
        let t = c.sim.now();
        c.crash_host(t + 1, HostId(3));
        // Partition the leader off the management network for 150 µs
        // right as the failure reports arrive.
        c.partition_controller(t + 10 * MICROS, leader, 150 * MICROS);
        c.run_for(900 * MICROS);
        assert_eq!(c.sim.stats.faults_ctrl_partitions, 1);
        let failed = c.failed_processes();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].0, ProcessId(3));
        assert!(c.controller_pending().is_empty(), "recovery completed despite the partition");
        c.send(ProcessId(0), vec![Message::new(ProcessId(1), "post")], true).unwrap();
        c.run_for(300 * MICROS);
        assert!(c.take_deliveries().iter().any(|r| r.msg.payload == Bytes::from_static(b"post")));
    }

    #[test]
    fn sharded_cluster_bit_identical_across_lane_counts() {
        // The full cluster — switches, hosts, controller, a host crash
        // and its recovery — must produce byte-identical delivery and
        // event streams for every lane count of the sharded engine
        // (threads = 1 is the deterministic reference).
        let run = |threads: usize| {
            let mut cfg = ClusterConfig::single_rack(4, 4);
            cfg.threads = threads;
            let mut c = Cluster::new(cfg);
            assert!(c.sim.is_sharded());
            c.run_for(50 * MICROS);
            for p in 0..4u32 {
                c.send(ProcessId(p), vec![Message::new(ProcessId((p + 1) % 4), "x")], true)
                    .unwrap();
            }
            let t = c.sim.now();
            c.crash_host(t + 20 * MICROS, HostId(3));
            c.run_for(600 * MICROS);
            let d: Vec<_> = c
                .take_deliveries()
                .iter()
                .map(|r| (r.at, r.receiver, r.msg.ts, r.msg.src, r.reliable))
                .collect();
            let ev: Vec<_> = c.user_events.lock().unwrap().clone();
            (d, format!("{ev:?}"), c.sim.stats.events, c.failed_processes())
        };
        let one = run(1);
        assert!(!one.0.is_empty(), "reference run delivered nothing");
        assert_eq!(one.3.first().map(|f| f.0), Some(ProcessId(3)));
        assert_eq!(run(2), one, "threads=2 diverged from threads=1");
        assert_eq!(run(3), one, "threads=3 diverged from threads=1");
    }

    #[test]
    fn sharded_testbed_preserves_total_order() {
        let mut cfg = ClusterConfig::testbed(32);
        cfg.threads = 2;
        let mut c = Cluster::new(cfg);
        c.run_for(50 * MICROS);
        for round in 0..3 {
            for p in 0..6u32 {
                let payload = format!("{p}-{round}");
                c.send(
                    ProcessId(p),
                    vec![
                        Message::new(ProcessId(30), payload.clone()),
                        Message::new(ProcessId(31), payload),
                    ],
                    false,
                )
                .unwrap();
            }
            c.run_for(10 * MICROS);
        }
        c.run_for(400 * MICROS);
        let d = c.take_deliveries();
        let seen_by = |r: u32| -> Vec<Bytes> {
            d.iter()
                .filter(|rec| rec.receiver == ProcessId(r))
                .map(|rec| rec.msg.payload.clone())
                .collect()
        };
        let a = seen_by(30);
        assert_eq!(a.len(), 18, "all scatterings delivered cross-pod");
        assert_eq!(a, seen_by(31), "both receivers must deliver in the same order");
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut c = Cluster::new(ClusterConfig::single_rack(4, 4));
            c.run_for(50 * MICROS);
            for p in 0..4u32 {
                c.send(ProcessId(p), vec![Message::new(ProcessId((p + 1) % 4), "x")], false)
                    .unwrap();
            }
            c.run_for(200 * MICROS);
            c.take_deliveries()
                .iter()
                .map(|r| (r.at, r.receiver, r.msg.ts, r.msg.src))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
