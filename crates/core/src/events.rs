//! User-visible events (the callback side of the paper's Table 1 API).

use onepipe_types::ids::ProcessId;
use onepipe_types::time::Timestamp;
use onepipe_types::wire::Datagram;

/// Events surfaced to the application by [`Endpoint::poll_event`].
///
/// [`Endpoint::poll_event`]: crate::endpoint::Endpoint::poll_event
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UserEvent {
    /// A best-effort message was lost (NAK or ACK timeout) — the
    /// `onepipe_send_fail_callback` of Table 1. Loss recovery is up to the
    /// application.
    SendFailed {
        /// Timestamp the message was sent with.
        ts: Timestamp,
        /// Scattering sequence number.
        seq: u64,
        /// The destination that did not receive it.
        dst: ProcessId,
    },
    /// A reliable scattering was aborted because a receiver failed before
    /// acknowledging (failure atomicity: no receiver will deliver it).
    Recalled {
        /// Timestamp of the recalled scattering.
        ts: Timestamp,
        /// Scattering sequence number.
        seq: u64,
    },
    /// A reliable scattering is fully acknowledged and committed: every
    /// live receiver will deliver it.
    Committed {
        /// Timestamp of the committed scattering.
        ts: Timestamp,
        /// Scattering sequence number.
        seq: u64,
    },
    /// The controller announced failed processes — the
    /// `onepipe_proc_fail_callback` of Table 1. After the application has
    /// reacted it must call `complete_failure_callback` so the endpoint
    /// can report completion to the controller.
    ProcessFailed {
        /// Announcement id (echo in the completion).
        announce_id: u64,
        /// Failed processes with failure timestamps.
        failures: Vec<(ProcessId, Timestamp)>,
    },
}

/// Requests from the endpoint to the controller (management network).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CtrlRequest {
    /// Repeated retransmissions failed; ask the controller to forward the
    /// packet to its destination (§5.2 "Controller Forwarding").
    Forward {
        /// The packet to forward.
        dgram: Datagram,
    },
    /// The failure callback (and all recall work) for `announce_id` is
    /// complete.
    CallbackComplete {
        /// The announcement being acknowledged.
        announce_id: u64,
    },
    /// A recall could not be delivered to a (failed) receiver; record it
    /// for receiver recovery.
    UndeliverableRecall {
        /// The unreachable receiver.
        to: ProcessId,
        /// Scattering timestamp.
        ts: Timestamp,
        /// Scattering sequence number.
        seq: u64,
    },
}
