//! Endpoint configuration.

use onepipe_types::time::{Duration, MICROS};

/// How the receive side releases messages to the application.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeliveryMode {
    /// 1Pipe semantics: hold messages until the barrier passes and deliver
    /// in total order.
    Ordered,
    /// Baseline ("unorder" in Figure 9a): deliver as soon as a message is
    /// complete, ignoring barriers. Used for latency/throughput baselines.
    Unordered,
}

/// Tunables of a 1Pipe endpoint. Defaults follow the paper's testbed.
#[derive(Clone, Copy, Debug)]
pub struct EndpointConfig {
    /// Maximum payload bytes per fragment (RDMA UD MTU minus headers).
    pub mtu_payload: usize,
    /// Initial / maximum congestion window, in packets per destination.
    pub initial_cwnd: u32,
    /// Receive window advertised per connection, packets (paper: receive
    /// buffer provisioned at connection setup).
    pub recv_window: u32,
    /// Retransmission timeout for reliable packets (local-clock ns).
    pub rto: Duration,
    /// After this many fruitless retransmissions, ask the controller to
    /// forward the packet (§5.2 "Controller Forwarding").
    pub forward_after_retries: u32,
    /// ACK timeout after which a best-effort packet is reported lost via
    /// the send-failure callback.
    pub be_ack_timeout: Duration,
    /// Whether barrier fields on received *data* packets can be trusted.
    /// True under the programmable-chip incarnation (fields are rewritten
    /// per hop); false under switch-CPU / host-delegation, where only
    /// beacons carry valid barriers (§6.2.2).
    pub trust_data_barriers: bool,
    /// Ordered (1Pipe) or unordered (baseline) delivery.
    pub delivery: DeliveryMode,
    /// Receiver-side random message drop probability — reproduces the
    /// paper's loss-rate experiments, which "simulate random message drop
    /// in lib1pipe receiver" (§7.2).
    pub rx_drop_rate: f64,
    /// Send-buffer capacity in scatterings; `send` fails beyond this.
    pub send_buffer_scatterings: usize,
    /// DCTCP gain `g` for the ECN fraction EWMA.
    pub dctcp_gain: f64,
    /// Seed for the endpoint's deterministic RNG (drop sampling).
    pub seed: u64,
    /// Artificial extra delivery delay: the receiver holds the barrier
    /// back by this much (used by the Figure 11 reorder-overhead sweep).
    pub artificial_delay: Duration,
}

impl Default for EndpointConfig {
    fn default() -> Self {
        EndpointConfig {
            mtu_payload: 1024,
            initial_cwnd: 64,
            recv_window: 256,
            rto: 100 * MICROS,
            forward_after_retries: 8,
            be_ack_timeout: 200 * MICROS,
            trust_data_barriers: true,
            delivery: DeliveryMode::Ordered,
            rx_drop_rate: 0.0,
            send_buffer_scatterings: 4096,
            dctcp_gain: 1.0 / 16.0,
            seed: 1,
            artificial_delay: 0,
        }
    }
}

impl EndpointConfig {
    /// Configuration for the switch-CPU / host-delegate incarnations,
    /// where only beacons carry barriers.
    pub fn beacon_only_barriers(mut self) -> Self {
        self.trust_data_barriers = false;
        self
    }

    /// Baseline configuration with ordering disabled.
    pub fn unordered(mut self) -> Self {
        self.delivery = DeliveryMode::Unordered;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_toggle_fields() {
        let c = EndpointConfig::default();
        assert!(c.trust_data_barriers);
        assert_eq!(c.delivery, DeliveryMode::Ordered);
        let c = c.beacon_only_barriers().unordered();
        assert!(!c.trust_data_barriers);
        assert_eq!(c.delivery, DeliveryMode::Unordered);
    }
}
