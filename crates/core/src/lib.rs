//! # lib1pipe — the 1Pipe endpoint library
//!
//! Implements the end-host side of 1Pipe (paper §6.1): the programming API
//! of Table 1, timestamping, send/receive buffering, receiver-side
//! reordering against barrier timestamps, the best-effort service, the
//! reliable service's two-phase commit, flow/congestion control, and the
//! process side of failure recovery.
//!
//! The centerpiece, [`Endpoint`], is a *sans-io* state machine in the
//! smoltcp tradition: it never touches sockets, clocks or timers itself.
//! Callers feed it local-clock readings and incoming datagrams, and drain
//! outgoing datagrams, deliveries and user events:
//!
//! ```text
//!   app ──send_unreliable/send_reliable──▶ ┌──────────┐ ──poll_transmit──▶ wire
//!   wire ──handle_datagram───────────────▶ │ Endpoint │ ──recv_*─────────▶ app
//!   beacons ──on_barrier─────────────────▶ └──────────┘ ──poll_event─────▶ app
//! ```
//!
//! One layer up, [`runtime`] packages everything a 1Pipe *host* does —
//! endpoint pumping, app-hook dispatch, beacon emission with its
//! flush-before-beacon invariant, ctrl-request routing — behind the tiny
//! [`runtime::Wire`] transport trait. Two adapters drive it: [`simhost`]
//! plugs hosts into the deterministic network simulator, and
//! `onepipe-udp` runs the same runtime over real UDP sockets. [`harness`]
//! assembles a complete simulated cluster — topology, switches,
//! endpoints, controller — and is what the experiments and examples
//! build on.

#![warn(missing_docs)]

pub mod config;
pub mod conn;
pub mod endpoint;
pub mod events;
pub mod frag;
pub mod harness;
pub mod reorder;
pub mod runtime;
pub mod simhost;

pub use config::{DeliveryMode, EndpointConfig};
pub use endpoint::Endpoint;
pub use events::UserEvent;
pub use harness::{Cluster, ClusterConfig};
pub use runtime::{AppHook, HostRuntime, SendQueue, Wire};
