//! Lamport-timestamp total order broadcast with periodic timestamp
//! exchange (the paper's "Lamport" baseline, §7.2: "a common optimization
//! ... which exchanges received timestamps per interval rather than per
//! message").
//!
//! Every process stamps broadcasts with a Lamport logical clock and sends
//! copies directly to all processes. A receiver may deliver a message
//! only once it knows every process's clock has passed the message's
//! timestamp, which it learns from data messages and from periodic status
//! broadcasts. The status exchange is O(N²) messages per interval — the
//! scalability wall Figure 8 shows. This is also the "receiver-side
//! aggregation" ablation: it computes exactly the 1Pipe barrier, but at
//! the edge instead of in the network.

use crate::measure::ProbeHandle;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use onepipe_netsim::engine::{Ctx, NodeLogic, SimPacket};
use onepipe_types::ids::{HostId, NodeId, ProcessId};
use onepipe_types::time::Timestamp;
use onepipe_types::wire::{Datagram, Flags, Opcode, PacketHeader};
use std::collections::BTreeMap;

const WORK_BASE: u64 = 100;
const EXCHANGE: u64 = 98;

const TAG_DATA: u8 = 0;
const TAG_STATUS: u8 = 1;

fn dgram(src: ProcessId, dst: ProcessId, payload: Bytes) -> Datagram {
    Datagram {
        src,
        dst,
        header: PacketHeader {
            msg_ts: Timestamp::ZERO,
            barrier: Timestamp::ZERO,
            commit_barrier: Timestamp::ZERO,
            psn: 0,
            opcode: Opcode::Control,
            flags: Flags::empty(),
        },
        payload,
    }
}

/// Host logic for Lamport-timestamp broadcast.
pub struct LamportHost {
    /// This host.
    pub host: HostId,
    tor: NodeId,
    procs: Vec<ProcessId>,
    all_procs: Vec<ProcessId>,
    rate: f64,
    max_sends: u64,
    /// Status-exchange interval (ns).
    pub exchange_interval: u64,
    sent: Vec<u64>,
    /// Per-local-process Lamport clock.
    lts: Vec<u64>,
    /// Per-local-process: last known clock of every process.
    last_seen: Vec<Vec<u64>>,
    /// Per-local-process buffered messages keyed by (lts, origin, k).
    pending: Vec<BTreeMap<(u64, u32, u64), ()>>,
    probe: ProbeHandle,
}

impl LamportHost {
    /// Create the logic for one host.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        host: HostId,
        tor: NodeId,
        procs: Vec<ProcessId>,
        all_procs: Vec<ProcessId>,
        rate: f64,
        max_sends: u64,
        exchange_interval: u64,
        probe: ProbeHandle,
    ) -> Self {
        let n_local = procs.len();
        let n_all = all_procs.len();
        LamportHost {
            host,
            tor,
            procs,
            all_procs,
            rate,
            max_sends,
            exchange_interval,
            sent: vec![0; n_local],
            lts: vec![0; n_local],
            last_seen: vec![vec![0; n_all]; n_local],
            pending: vec![BTreeMap::new(); n_local],
            probe,
        }
    }

    fn interval(&self) -> u64 {
        (1e9 / self.rate).max(1.0) as u64
    }

    fn local_index(&self, p: ProcessId) -> Option<usize> {
        self.procs.iter().position(|&x| x == p)
    }

    fn global_index(&self, p: ProcessId) -> Option<usize> {
        self.all_procs.iter().position(|&x| x == p)
    }

    fn data_payload(origin: ProcessId, k: u64, ts: u64) -> Bytes {
        let mut b = BytesMut::with_capacity(21 + 43);
        b.put_u8(TAG_DATA);
        b.put_u32(origin.0);
        b.put_u64(k);
        b.put_u64(ts);
        b.extend_from_slice(&[0u8; 43]);
        b.freeze()
    }

    fn status_payload(origin: ProcessId, ts: u64) -> Bytes {
        let mut b = BytesMut::with_capacity(13);
        b.put_u8(TAG_STATUS);
        b.put_u32(origin.0);
        b.put_u64(ts);
        b.freeze()
    }

    /// Try to deliver buffered messages on local process `i`: everything
    /// strictly below the minimum clock seen from all processes.
    fn try_deliver(&mut self, now: u64, i: usize) {
        let min_seen = *self.last_seen[i].iter().min().unwrap_or(&0);
        while let Some((&(ts, origin, k), _)) = self.pending[i].first_key_value() {
            if ts >= min_seen {
                break;
            }
            self.pending[i].remove(&(ts, origin, k));
            self.probe.lock().unwrap().record_delivery(
                now,
                self.procs[i],
                ProcessId(origin),
                k,
                (ts, origin),
            );
        }
    }

    fn observe(&mut self, now: u64, i: usize, from: ProcessId, ts: u64) {
        if let Some(g) = self.global_index(from) {
            if self.last_seen[i][g] < ts {
                self.last_seen[i][g] = ts;
                self.try_deliver(now, i);
            }
        }
    }
}

impl NodeLogic for LamportHost {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for i in 0..self.procs.len() {
            let phase = 1 + (self.procs[i].0 as u64 * 89) % self.interval();
            ctx.set_timer(phase, WORK_BASE + i as u64);
        }
        ctx.set_timer(self.exchange_interval, EXCHANGE);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _from: NodeId, pkt: SimPacket) {
        let d = pkt.dgram;
        let mut p = d.payload.clone();
        if p.is_empty() {
            return;
        }
        let tag = p.get_u8();
        let Some(i) = self.local_index(d.dst) else { return };
        match tag {
            TAG_DATA if p.remaining() >= 20 => {
                let origin = ProcessId(p.get_u32());
                let k = p.get_u64();
                let ts = p.get_u64();
                self.lts[i] = self.lts[i].max(ts);
                self.pending[i].insert((ts, origin.0, k), ());
                // A data message also reveals the sender's clock.
                self.observe(ctx.now(), i, origin, ts);
            }
            TAG_STATUS if p.remaining() >= 12 => {
                let origin = ProcessId(p.get_u32());
                let ts = p.get_u64();
                self.lts[i] = self.lts[i].max(ts);
                self.observe(ctx.now(), i, origin, ts);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == EXCHANGE {
            // Every local process broadcasts its clock to everyone.
            for i in 0..self.procs.len() {
                self.lts[i] += 1;
                let origin = self.procs[i];
                let ts = self.lts[i];
                for &p in &self.all_procs.clone() {
                    if let Some(j) = self.local_index(p) {
                        self.observe(ctx.now(), j, origin, ts);
                    } else {
                        let d = dgram(origin, p, Self::status_payload(origin, ts));
                        ctx.send(self.tor, SimPacket::new(d));
                    }
                }
            }
            ctx.set_timer(self.exchange_interval, EXCHANGE);
            return;
        }
        if token >= WORK_BASE {
            let i = (token - WORK_BASE) as usize;
            if i >= self.procs.len() || self.sent[i] >= self.max_sends {
                return;
            }
            let origin = self.procs[i];
            let k = self.sent[i];
            self.sent[i] += 1;
            self.lts[i] += 1;
            let ts = self.lts[i];
            self.probe.lock().unwrap().record_send(ctx.now(), origin, k);
            for &p in &self.all_procs.clone() {
                if let Some(j) = self.local_index(p) {
                    self.pending[j].insert((ts, origin.0, k), ());
                    self.observe(ctx.now(), j, origin, ts);
                } else {
                    let d = dgram(origin, p, Self::data_payload(origin, k, ts));
                    ctx.send(self.tor, SimPacket::new(d));
                }
            }
            ctx.set_timer(self.interval(), token);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::BroadcastProbe;
    use crate::plain::PlainSwitch;
    use onepipe_netsim::engine::Sim;
    use onepipe_netsim::topology::{FatTreeParams, Topology};
    use onepipe_types::process_map::ProcessMap;
    use std::sync::Arc;

    fn run_lamport(n: usize, rate: f64, exchange: u64, dur: u64) -> ProbeHandle {
        let mut sim = Sim::new(5);
        let topo = Arc::new(Topology::build(&mut sim, FatTreeParams::single_rack(n as u32)));
        let procs = Arc::new(ProcessMap::place_round_robin(n, n));
        PlainSwitch::install_all(&mut sim, &topo, &procs);
        let probe = BroadcastProbe::shared();
        let all: Vec<ProcessId> = procs.all().collect();
        for h in 0..n {
            let host = HostId(h as u32);
            let logic = LamportHost::new(
                host,
                topo.tor_up_of(host),
                procs.processes_on(host).to_vec(),
                all.clone(),
                rate,
                u64::MAX,
                exchange,
                probe.clone(),
            );
            sim.set_logic(topo.host_node(host), Box::new(logic));
        }
        sim.run_until(dur);
        probe
    }

    #[test]
    fn lamport_delivers_in_consistent_order() {
        let probe = run_lamport(4, 100_000.0, 10_000, 3_000_000);
        assert!(probe.lock().unwrap().delivery_count() > 0);
        assert_eq!(probe.lock().unwrap().order_violations, 0);
    }

    #[test]
    fn shorter_exchange_interval_means_lower_latency() {
        let fast = run_lamport(4, 50_000.0, 5_000, 3_000_000);
        let slow = run_lamport(4, 50_000.0, 50_000, 3_000_000);
        let fm = fast.lock().unwrap().metrics(4, 500_000, 3_000_000);
        let sm = slow.lock().unwrap().metrics(4, 500_000, 3_000_000);
        assert!(fm.latency.mean() > 0.0 && sm.latency.mean() > 0.0);
        assert!(
            fm.latency.mean() < sm.latency.mean(),
            "fast {} vs slow {}",
            fm.latency.mean(),
            sm.latency.mean()
        );
    }
}
