//! Centralized-sequencer total order broadcast (Figure 8's "SwitchSeq"
//! and "HostSeq").
//!
//! Every broadcast detours through one sequencer process, which assigns a
//! global sequence number and fans out one copy per process. Receivers
//! deliver in contiguous sequence order. The two variants differ in the
//! sequencer's per-packet service time: a programmable-switch sequencer
//! (Eris \[51\] / NetChain \[52\]) serializes at chip speed, while a host-NIC
//! sequencer (FaSST-style \[57\]) is an order of magnitude slower.
//!
//! Modelling note (recorded in DESIGN.md): both variants run the
//! sequencer as a process on host 0 with different service rates. The
//! real SwitchSeq detour is 1–2 hops shorter; the dominant scalability
//! effects — the central service bottleneck and the N× fan-out bandwidth
//! at one point — are captured exactly.

use crate::measure::ProbeHandle;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use onepipe_netsim::engine::{Ctx, NodeLogic, SimPacket};
use onepipe_types::ids::{HostId, NodeId, ProcessId};
use onepipe_types::time::{Duration, Timestamp};
use onepipe_types::wire::{Datagram, Flags, Opcode, PacketHeader};
use std::collections::{BTreeMap, VecDeque};

/// Timer token base for the per-process workload.
const WORK_BASE: u64 = 100;
/// Timer token for sequencer service completion.
const SERVICE: u64 = 99;

/// Sequencer variant service times (per request, ns).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeqKind {
    /// Programmable switching chip: ~100 Mpps.
    Switch,
    /// Host NIC + CPU: ~2.5 Mpps once fan-out work is included.
    Host,
}

impl SeqKind {
    /// Service time per sequenced broadcast (excluding fan-out
    /// serialization, which the egress link models).
    pub fn service_ns(self) -> Duration {
        match self {
            SeqKind::Switch => 10,
            SeqKind::Host => 400,
        }
    }
}

fn req_payload(origin: ProcessId, k: u64) -> Bytes {
    let mut b = BytesMut::with_capacity(12 + 52);
    b.put_u32(origin.0);
    b.put_u64(k);
    b.extend_from_slice(&[0u8; 52]); // pad to the paper's 64 B messages
    b.freeze()
}

fn parse_payload(mut p: Bytes) -> Option<(ProcessId, u64)> {
    if p.len() < 12 {
        return None;
    }
    Some((ProcessId(p.get_u32()), p.get_u64()))
}

fn dgram(src: ProcessId, dst: ProcessId, psn: u32, payload: Bytes) -> Datagram {
    Datagram {
        src,
        dst,
        header: PacketHeader {
            msg_ts: Timestamp::ZERO,
            barrier: Timestamp::ZERO,
            commit_barrier: Timestamp::ZERO,
            psn,
            opcode: Opcode::Control,
            flags: Flags::empty(),
        },
        payload,
    }
}

/// Host logic for the sequencer-based broadcast: runs the local processes'
/// workload, and — on the host owning the sequencer process — the
/// sequencer service loop.
pub struct SeqHost {
    /// This host.
    pub host: HostId,
    tor: NodeId,
    /// Local process ids.
    procs: Vec<ProcessId>,
    /// All processes in the system (fan-out list).
    all_procs: Vec<ProcessId>,
    /// The sequencer process.
    seq_proc: ProcessId,
    kind: SeqKind,
    /// Broadcasts per second offered by each local process.
    rate: f64,
    /// Stop the workload after this many sends per process.
    max_sends: u64,
    sent: Vec<u64>,
    // Sequencer state (active only on its host).
    service_queue: VecDeque<(ProcessId, u64)>,
    busy: bool,
    next_seq: u64,
    /// Recent sequenced broadcasts, kept for gap retransmission.
    history: VecDeque<(u64, ProcessId, u64)>,
    // Receiver state: contiguous-order delivery per local process.
    next_deliver: Vec<u64>,
    pending: Vec<BTreeMap<u64, (ProcessId, u64)>>,
    probe: ProbeHandle,
}

impl SeqHost {
    /// Create the logic for one host.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        host: HostId,
        tor: NodeId,
        procs: Vec<ProcessId>,
        all_procs: Vec<ProcessId>,
        seq_proc: ProcessId,
        kind: SeqKind,
        rate: f64,
        max_sends: u64,
        probe: ProbeHandle,
    ) -> Self {
        let n = procs.len();
        SeqHost {
            host,
            tor,
            procs,
            all_procs,
            seq_proc,
            kind,
            rate,
            max_sends,
            sent: vec![0; n],
            service_queue: VecDeque::new(),
            busy: false,
            next_seq: 1,
            history: VecDeque::new(),
            next_deliver: vec![1; n],
            pending: vec![BTreeMap::new(); n],
            probe,
        }
    }

    fn interval(&self) -> u64 {
        (1e9 / self.rate).max(1.0) as u64
    }

    fn serve_one(&mut self, ctx: &mut Ctx<'_>) {
        if let Some((origin, k)) = self.service_queue.pop_front() {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.history.push_back((seq, origin, k));
            if self.history.len() > 4096 {
                self.history.pop_front();
            }
            for &p in &self.all_procs.clone() {
                let d = dgram(self.seq_proc, p, seq as u32, req_payload(origin, k));
                ctx.send(self.tor, SimPacket::new(d));
            }
            self.busy = true;
            ctx.set_timer(self.kind.service_ns(), SERVICE);
        } else {
            self.busy = false;
        }
    }

    /// Gap recovery: re-send one sequenced broadcast to one receiver.
    fn retransmit(&mut self, ctx: &mut Ctx<'_>, to: ProcessId, seq: u64) {
        if let Some(&(_, origin, k)) = self.history.iter().find(|(s, _, _)| *s == seq) {
            let d = dgram(self.seq_proc, to, seq as u32, req_payload(origin, k));
            ctx.send(self.tor, SimPacket::new(d));
        }
    }

    fn local_index(&self, p: ProcessId) -> Option<usize> {
        self.procs.iter().position(|&x| x == p)
    }
}

impl NodeLogic for SeqHost {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for i in 0..self.procs.len() {
            // Stagger process phases to avoid synchronized bursts.
            let phase = 1 + (self.procs[i].0 as u64 * 97) % self.interval();
            ctx.set_timer(phase, WORK_BASE + i as u64);
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _from: NodeId, pkt: SimPacket) {
        let d = pkt.dgram;
        if d.dst == self.seq_proc && self.local_index(self.seq_proc).is_some() && d.psn_is_request()
        {
            // Request to the sequencer.
            if let Some((origin, k)) = parse_payload(d.payload) {
                self.service_queue.push_back((origin, k));
                if !self.busy {
                    self.serve_one(ctx);
                }
            }
            return;
        }
        if d.header.psn == u32::MAX - 1 && self.local_index(self.seq_proc).is_some() {
            // Gap NAK: retransmit the requested sequence number.
            if let Some((_, missing)) = parse_payload(d.payload) {
                self.retransmit(ctx, d.src, missing);
            }
            return;
        }
        // Sequenced copy for a local process.
        let Some(i) = self.local_index(d.dst) else { return };
        let Some((origin, k)) = parse_payload(d.payload) else { return };
        let seq = d.header.psn as u64;
        self.pending[i].insert(seq, (origin, k));
        // A gap ahead of the delivery cursor: ask the sequencer to
        // retransmit the first missing broadcast (simple go-back cursor).
        if seq > self.next_deliver[i] && !self.pending[i].contains_key(&self.next_deliver[i]) {
            let nak =
                dgram(d.dst, self.seq_proc, u32::MAX - 1, req_payload(d.dst, self.next_deliver[i]));
            ctx.send(self.tor, SimPacket::new(nak));
        }
        // Deliver the contiguous prefix.
        while let Some(&(origin, k)) = self.pending[i].get(&self.next_deliver[i]) {
            let seq = self.next_deliver[i];
            self.pending[i].remove(&seq);
            self.next_deliver[i] += 1;
            self.probe.lock().unwrap().record_delivery(
                ctx.now(),
                self.procs[i],
                origin,
                k,
                (seq, 0),
            );
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == SERVICE {
            self.serve_one(ctx);
            return;
        }
        if token >= WORK_BASE {
            let i = (token - WORK_BASE) as usize;
            if i >= self.procs.len() || self.sent[i] >= self.max_sends {
                return;
            }
            let origin = self.procs[i];
            let k = self.sent[i];
            self.sent[i] += 1;
            self.probe.lock().unwrap().record_send(ctx.now(), origin, k);
            let d = dgram(origin, self.seq_proc, u32::MAX, req_payload(origin, k));
            if self.local_index(self.seq_proc).is_some() {
                // Request to a sequencer on this very host: short-circuit.
                self.service_queue.push_back((origin, k));
                if !self.busy {
                    self.serve_one(ctx);
                }
            } else {
                ctx.send(self.tor, SimPacket::new(d));
            }
            ctx.set_timer(self.interval(), token);
        }
    }
}

/// Distinguish requests (psn = u32::MAX) from sequenced copies.
trait PsnKind {
    fn psn_is_request(&self) -> bool;
}
impl PsnKind for Datagram {
    fn psn_is_request(&self) -> bool {
        self.header.psn == u32::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::BroadcastProbe;
    use crate::plain::PlainSwitch;
    use onepipe_netsim::engine::Sim;
    use onepipe_netsim::topology::{FatTreeParams, Topology};
    use onepipe_types::process_map::ProcessMap;
    use std::sync::Arc;

    fn run_seq(kind: SeqKind, n: usize, rate: f64, dur_ns: u64) -> (ProbeHandle, usize) {
        let mut sim = Sim::new(3);
        let topo = Arc::new(Topology::build(&mut sim, FatTreeParams::single_rack(n as u32)));
        let procs = Arc::new(ProcessMap::place_round_robin(n, n));
        PlainSwitch::install_all(&mut sim, &topo, &procs);
        let probe = BroadcastProbe::shared();
        let all: Vec<ProcessId> = procs.all().collect();
        for h in 0..n {
            let host = HostId(h as u32);
            let logic = SeqHost::new(
                host,
                topo.tor_up_of(host),
                procs.processes_on(host).to_vec(),
                all.clone(),
                ProcessId(0),
                kind,
                rate,
                u64::MAX,
                probe.clone(),
            );
            sim.set_logic(topo.host_node(host), Box::new(logic));
        }
        sim.run_until(dur_ns);
        let n_del = probe.lock().unwrap().delivery_count();
        (probe, n_del)
    }

    #[test]
    fn sequencer_delivers_in_total_order() {
        let (probe, n_del) = run_seq(SeqKind::Switch, 4, 100_000.0, 1_000_000);
        assert!(n_del > 0, "deliveries happened");
        assert_eq!(probe.lock().unwrap().order_violations, 0);
    }

    #[test]
    fn host_sequencer_is_slower_than_switch() {
        // Saturating load: the switch sequencer serves more broadcasts.
        let (_, switch_del) = run_seq(SeqKind::Switch, 4, 3_000_000.0, 2_000_000);
        let (_, host_del) = run_seq(SeqKind::Host, 4, 3_000_000.0, 2_000_000);
        assert!(switch_del > host_del, "switch seq {switch_del} should beat host seq {host_del}");
    }

    #[test]
    fn sequencer_recovers_from_losses() {
        // With lossy links, gap NAKs must keep delivery flowing instead of
        // stalling forever behind the first hole.
        let mut sim = Sim::new(17);
        let topo = Arc::new(Topology::build(&mut sim, FatTreeParams::single_rack(4)));
        let procs = Arc::new(ProcessMap::place_round_robin(4, 4));
        PlainSwitch::install_all(&mut sim, &topo, &procs);
        sim.set_global_loss_rate(0.02);
        let probe = BroadcastProbe::shared();
        let all: Vec<ProcessId> = procs.all().collect();
        for h in 0..4 {
            let host = HostId(h as u32);
            let logic = SeqHost::new(
                host,
                topo.tor_up_of(host),
                procs.processes_on(host).to_vec(),
                all.clone(),
                ProcessId(0),
                SeqKind::Switch,
                100_000.0,
                200,
                probe.clone(),
            );
            sim.set_logic(topo.host_node(host), Box::new(logic));
        }
        sim.run_until(20_000_000);
        let p = probe.lock().unwrap();
        assert_eq!(p.order_violations, 0);
        // 4 procs × 200 sends × 4 receivers = 3200 expected deliveries;
        // requests to the sequencer can be lost too (those broadcasts never
        // exist), but sequenced copies must recover via NAKs.
        assert!(p.delivery_count() > 2_900, "only {} of ~3200 deliveries", p.delivery_count());
    }

    #[test]
    fn all_processes_receive_every_broadcast() {
        let (probe, n_del) = run_seq(SeqKind::Switch, 4, 50_000.0, 1_000_000);
        // Each sequenced broadcast is delivered to all 4 processes.
        assert_eq!(n_del % 4, 0);
        assert!(n_del >= 4);
        assert_eq!(probe.lock().unwrap().order_violations, 0);
    }
}
