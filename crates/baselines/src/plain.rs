//! A plain forwarding switch (no barrier logic) for baseline runs.

use onepipe_netsim::engine::{Ctx, NodeLogic, SimPacket};
use onepipe_netsim::topology::Topology;
use onepipe_types::ids::{HostId, NodeId, ProcessId};
use onepipe_types::process_map::ProcessMap;
use std::sync::Arc;

/// Forwards every packet toward its destination process's host, nothing
/// else — the behaviour of an ordinary data center switch.
pub struct PlainSwitch {
    topo: Arc<Topology>,
    procs: Arc<ProcessMap>,
    /// Packets forwarded.
    pub forwarded: u64,
    /// Packets dropped for lack of a route.
    pub unroutable: u64,
}

impl PlainSwitch {
    /// Create a plain switch.
    pub fn new(topo: Arc<Topology>, procs: Arc<ProcessMap>) -> Self {
        PlainSwitch { topo, procs, forwarded: 0, unroutable: 0 }
    }

    /// Install plain switches on every switch node of a topology.
    pub fn install_all(
        sim: &mut onepipe_netsim::engine::Sim,
        topo: &Arc<Topology>,
        procs: &Arc<ProcessMap>,
    ) {
        for &s in &topo.switch_nodes {
            sim.set_logic(s, Box::new(PlainSwitch::new(topo.clone(), procs.clone())));
        }
    }
}

impl NodeLogic for PlainSwitch {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _from: NodeId, pkt: SimPacket) {
        let Some(dst_host) = self.procs.host_of(pkt.dgram.dst) else {
            self.unroutable += 1;
            return;
        };
        let src_host = self.procs.host_of(pkt.dgram.src).unwrap_or(HostId(0));
        let Some(next) = self.topo.route(ctx.node(), src_host, dst_host) else {
            self.unroutable += 1;
            return;
        };
        self.forwarded += 1;
        ctx.send(next, pkt);
    }
}

/// Convenience: the process id used for node-addressed baseline control
/// packets that target a host rather than a real process.
pub fn host_proc(procs: &ProcessMap, host: HostId) -> Option<ProcessId> {
    procs.processes_on(host).first().copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use onepipe_netsim::engine::Sim;
    use onepipe_netsim::topology::FatTreeParams;
    use onepipe_types::time::Timestamp;
    use onepipe_types::wire::{Datagram, Flags, Opcode, PacketHeader};
    use std::sync::Mutex;

    struct Probe {
        tor: NodeId,
        out: Vec<Datagram>,
        got: Arc<Mutex<Vec<Datagram>>>,
    }
    impl NodeLogic for Probe {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for d in self.out.drain(..) {
                ctx.send(self.tor, SimPacket::new(d));
            }
        }
        fn on_packet(&mut self, _: &mut Ctx<'_>, _: NodeId, pkt: SimPacket) {
            self.got.lock().unwrap().push(pkt.dgram);
        }
    }

    #[test]
    fn plain_switch_routes_across_pods() {
        let mut sim = Sim::new(0);
        let topo = Arc::new(Topology::build(&mut sim, FatTreeParams::testbed()));
        let procs = Arc::new(ProcessMap::place_round_robin(32, 32));
        PlainSwitch::install_all(&mut sim, &topo, &procs);
        let got = Arc::new(Mutex::new(Vec::new()));
        let d = Datagram {
            src: ProcessId(0),
            dst: ProcessId(31),
            header: PacketHeader {
                msg_ts: Timestamp::ZERO,
                barrier: Timestamp::ZERO,
                commit_barrier: Timestamp::ZERO,
                psn: 7,
                opcode: Opcode::Control,
                flags: Flags::empty(),
            },
            payload: Bytes::from_static(b"x"),
        };
        sim.set_logic(
            topo.host_node(HostId(0)),
            Box::new(Probe { tor: topo.tor_up_of(HostId(0)), out: vec![d], got: got.clone() }),
        );
        let sink = Arc::new(Mutex::new(Vec::new()));
        sim.set_logic(
            topo.host_node(HostId(31)),
            Box::new(Probe { tor: topo.tor_up_of(HostId(31)), out: vec![], got: sink.clone() }),
        );
        sim.run_until(1_000_000);
        assert_eq!(sink.lock().unwrap().len(), 1);
        assert_eq!(sink.lock().unwrap()[0].header.psn, 7);
        assert!(got.lock().unwrap().is_empty());
    }
}
