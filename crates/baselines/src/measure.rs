//! Shared measurement plumbing for total-order broadcast experiments.

use onepipe_netsim::stats::Samples;
use onepipe_types::ids::ProcessId;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Records sends and deliveries of broadcast messages identified by
/// `(origin process, per-origin counter)` and derives throughput/latency.
#[derive(Default)]
pub struct BroadcastProbe {
    sends: HashMap<(ProcessId, u64), u64>,
    deliveries: Vec<(u64, ProcessId, ProcessId, u64)>,
    /// Per-receiver count of out-of-order deliveries (order violations).
    pub order_violations: u64,
    last_key: HashMap<ProcessId, (u64, u32, u64)>,
}

/// Shared handle to a probe.
pub type ProbeHandle = Arc<Mutex<BroadcastProbe>>;

impl BroadcastProbe {
    /// New shared probe.
    pub fn shared() -> ProbeHandle {
        Arc::new(Mutex::new(BroadcastProbe::default()))
    }

    /// Record a broadcast send at true time `at`.
    pub fn record_send(&mut self, at: u64, origin: ProcessId, k: u64) {
        self.sends.insert((origin, k), at);
    }

    /// Record a delivery of `(origin, k)` to `receiver`, with the total
    /// order key `(order_hi, order_lo)` the protocol assigned (sequence
    /// number, or (timestamp, origin) — anything monotone per receiver).
    pub fn record_delivery(
        &mut self,
        at: u64,
        receiver: ProcessId,
        origin: ProcessId,
        k: u64,
        order: (u64, u32),
    ) {
        let key = (order.0, order.1, k);
        if let Some(prev) = self.last_key.get(&receiver) {
            if key < *prev {
                self.order_violations += 1;
            }
        }
        self.last_key.insert(receiver, key);
        self.deliveries.push((at, receiver, origin, k));
    }

    /// Number of deliveries recorded.
    pub fn delivery_count(&self) -> usize {
        self.deliveries.len()
    }

    /// Compute metrics over a measurement window `[t0, t1]`.
    pub fn metrics(&self, n_procs: usize, t0: u64, t1: u64) -> BroadcastMetrics {
        let mut latency = Samples::new();
        let mut delivered_in_window = 0u64;
        for &(at, _rcv, origin, k) in &self.deliveries {
            if at < t0 || at > t1 {
                continue;
            }
            delivered_in_window += 1;
            if let Some(&sent) = self.sends.get(&(origin, k)) {
                latency.push((at - sent) as f64);
            }
        }
        let secs = (t1 - t0) as f64 / 1e9;
        // Each broadcast is delivered at every process; normalize to
        // broadcasts per second per process.
        let tput = delivered_in_window as f64 / (n_procs as f64).max(1.0) / secs.max(1e-12);
        BroadcastMetrics {
            throughput_per_proc: tput,
            latency,
            order_violations: self.order_violations,
        }
    }
}

/// Result of a broadcast measurement.
pub struct BroadcastMetrics {
    /// Delivered broadcasts per second per process.
    pub throughput_per_proc: f64,
    /// Delivery latency samples (ns).
    pub latency: Samples,
    /// Total-order violations observed (must be 0 for a correct protocol).
    pub order_violations: u64,
}

impl BroadcastMetrics {
    /// Mean latency in microseconds.
    pub fn mean_latency_us(&self) -> f64 {
        self.latency.mean() / 1_000.0
    }

    /// Throughput in million messages per second per process.
    pub fn mtput(&self) -> f64 {
        self.throughput_per_proc / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_computation() {
        let mut p = BroadcastProbe::default();
        let a = ProcessId(0);
        let b = ProcessId(1);
        p.record_send(1_000, a, 0);
        p.record_send(2_000, a, 1);
        p.record_delivery(2_000, b, a, 0, (1, 0));
        p.record_delivery(3_500, b, a, 1, (2, 0));
        let m = p.metrics(2, 0, 1_000_000_000);
        assert_eq!(m.order_violations, 0);
        assert_eq!(m.latency.len(), 2);
        assert!((m.latency.mean() - 1_250.0).abs() < 1e-9);
        assert!((m.throughput_per_proc - 1.0).abs() < 1e-9);
    }

    #[test]
    fn order_violation_detected() {
        let mut p = BroadcastProbe::default();
        let r = ProcessId(9);
        p.record_delivery(10, r, ProcessId(0), 0, (5, 0));
        p.record_delivery(20, r, ProcessId(1), 0, (3, 0)); // goes backwards
        assert_eq!(p.order_violations, 1);
    }

    #[test]
    fn window_filters_deliveries() {
        let mut p = BroadcastProbe::default();
        p.record_send(0, ProcessId(0), 0);
        p.record_delivery(100, ProcessId(1), ProcessId(0), 0, (1, 0));
        p.record_delivery(10_000, ProcessId(1), ProcessId(0), 0, (2, 0));
        let m = p.metrics(1, 0, 1_000);
        assert_eq!(m.latency.len(), 1);
    }
}
