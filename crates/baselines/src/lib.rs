//! Total-order broadcast baselines compared against 1Pipe in Figure 8:
//!
//! * [`sequencer`] — a centralized sequencer, either on a programmable
//!   switch (Eris/NetChain style, "SwitchSeq") or on a host NIC
//!   ("HostSeq"). All broadcasts detour through the sequencer, which
//!   stamps a global sequence number and fans copies out; it is both a
//!   processing and a bandwidth bottleneck.
//! * [`token`] — token-passing total order (Totem style): only the token
//!   holder may broadcast, stamping messages from the token's global
//!   counter.
//! * [`lamport`] — Lamport logical timestamps with periodic timestamp
//!   exchange: receivers deliver a message once every process's last
//!   reported timestamp exceeds it. This is also the "receiver-side
//!   aggregation" ablation of in-network barrier aggregation.
//!
//! All baselines run over the same [`onepipe-netsim`] substrate as 1Pipe,
//! with plain forwarding switches ([`plain::PlainSwitch`]) instead of
//! barrier-aggregating ones, and share a measurement harness
//! ([`measure`]).
//!
//! [`onepipe-netsim`]: ../onepipe_netsim/index.html

#![warn(missing_docs)]

pub mod lamport;
pub mod measure;
pub mod plain;
pub mod sequencer;
pub mod token;

pub use measure::{BroadcastMetrics, BroadcastProbe};
pub use plain::PlainSwitch;
