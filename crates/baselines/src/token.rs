//! Token-ring total order broadcast (Totem \[78\] / token protocols
//! \[36, 60, 86\] in the paper's related work).
//!
//! A single token circulates among all processes in id order. Only the
//! holder may broadcast: it stamps queued messages with consecutive
//! global sequence numbers taken from a counter carried in the token,
//! sends one copy per process, and passes the token on. Receivers deliver
//! in contiguous sequence order. Throughput is inherently bounded by
//! "one sender at a time" plus the token rotation time.

use crate::measure::ProbeHandle;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use onepipe_netsim::engine::{Ctx, NodeLogic, SimPacket};
use onepipe_types::ids::{HostId, NodeId, ProcessId};
use onepipe_types::time::Timestamp;
use onepipe_types::wire::{Datagram, Flags, Opcode, PacketHeader};
use std::collections::BTreeMap;

const WORK_BASE: u64 = 100;
/// Timer token used when every process is local and the token must park
/// briefly instead of recursing forever.
const TOKEN_RESUME: u64 = 97;

/// Payload tag: a data copy.
const TAG_DATA: u8 = 0;
/// Payload tag: the token.
const TAG_TOKEN: u8 = 1;

fn data_payload(origin: ProcessId, k: u64) -> Bytes {
    let mut b = BytesMut::with_capacity(13 + 51);
    b.put_u8(TAG_DATA);
    b.put_u32(origin.0);
    b.put_u64(k);
    b.extend_from_slice(&[0u8; 51]);
    b.freeze()
}

fn token_payload(counter: u64) -> Bytes {
    let mut b = BytesMut::with_capacity(9);
    b.put_u8(TAG_TOKEN);
    b.put_u64(counter);
    b.freeze()
}

fn dgram(src: ProcessId, dst: ProcessId, psn: u32, payload: Bytes) -> Datagram {
    Datagram {
        src,
        dst,
        header: PacketHeader {
            msg_ts: Timestamp::ZERO,
            barrier: Timestamp::ZERO,
            commit_barrier: Timestamp::ZERO,
            psn,
            opcode: Opcode::Control,
            flags: Flags::empty(),
        },
        payload,
    }
}

/// Host logic for the token-ring broadcast.
pub struct TokenHost {
    /// This host.
    pub host: HostId,
    tor: NodeId,
    procs: Vec<ProcessId>,
    all_procs: Vec<ProcessId>,
    rate: f64,
    max_sends: u64,
    /// Maximum broadcasts sent per token visit.
    batch: usize,
    sent: Vec<u64>,
    /// Locally queued broadcasts per process, waiting for the token.
    queued: Vec<Vec<u64>>,
    // Receiver state.
    next_deliver: Vec<u64>,
    pending: Vec<BTreeMap<u64, (ProcessId, u64)>>,
    probe: ProbeHandle,
    /// If set, this host starts the token at t=0 from the given process.
    pub start_token: Option<ProcessId>,
    /// Token waiting to resume on a fully-local ring.
    parked_token: Option<(ProcessId, u64)>,
}

impl TokenHost {
    /// Create the logic for one host.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        host: HostId,
        tor: NodeId,
        procs: Vec<ProcessId>,
        all_procs: Vec<ProcessId>,
        rate: f64,
        max_sends: u64,
        batch: usize,
        probe: ProbeHandle,
    ) -> Self {
        let n = procs.len();
        TokenHost {
            host,
            tor,
            procs,
            all_procs,
            rate,
            max_sends,
            batch,
            sent: vec![0; n],
            queued: vec![Vec::new(); n],
            next_deliver: vec![1; n],
            pending: vec![BTreeMap::new(); n],
            probe,
            start_token: None,
            parked_token: None,
        }
    }

    fn interval(&self) -> u64 {
        (1e9 / self.rate).max(1.0) as u64
    }

    fn local_index(&self, p: ProcessId) -> Option<usize> {
        self.procs.iter().position(|&x| x == p)
    }

    fn next_proc(&self, p: ProcessId) -> ProcessId {
        let pos = self.all_procs.iter().position(|&x| x == p).unwrap();
        self.all_procs[(pos + 1) % self.all_procs.len()]
    }

    fn handle_token(&mut self, ctx: &mut Ctx<'_>, holder: ProcessId, counter: u64) {
        let mut holder = holder;
        let mut counter = counter;
        // Iterate over consecutive local holders; bounded by the ring size
        // so a fully-local ring parks instead of spinning forever.
        for _ in 0..self.all_procs.len() {
            let Some(i) = self.local_index(holder) else {
                let d = dgram(self.procs[0], holder, 0, token_payload(counter));
                ctx.send(self.tor, SimPacket::new(d));
                return;
            };
            let take = self.queued[i].len().min(self.batch);
            let burst: Vec<u64> = self.queued[i].drain(..take).collect();
            for k in burst {
                counter += 1;
                for &p in &self.all_procs.clone() {
                    if self.local_index(p).is_some() {
                        // Local copy: deliver via loopback.
                        self.on_data(ctx.now(), p, holder, k, counter);
                    } else {
                        let d = dgram(holder, p, counter as u32, data_payload(holder, k));
                        ctx.send(self.tor, SimPacket::new(d));
                    }
                }
            }
            holder = self.next_proc(holder);
        }
        // The whole ring lives on this host: park the token for a moment.
        self.parked_token = Some((holder, counter));
        ctx.set_timer(1_000, TOKEN_RESUME);
    }

    fn on_data(&mut self, now: u64, receiver: ProcessId, origin: ProcessId, k: u64, seq: u64) {
        let Some(i) = self.local_index(receiver) else { return };
        self.pending[i].insert(seq, (origin, k));
        while let Some(&(origin, k)) = self.pending[i].get(&self.next_deliver[i]) {
            let seq = self.next_deliver[i];
            self.pending[i].remove(&seq);
            self.next_deliver[i] += 1;
            self.probe.lock().unwrap().record_delivery(now, receiver, origin, k, (seq, 0));
        }
    }
}

impl NodeLogic for TokenHost {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for i in 0..self.procs.len() {
            let phase = 1 + (self.procs[i].0 as u64 * 131) % self.interval();
            ctx.set_timer(phase, WORK_BASE + i as u64);
        }
        if let Some(p) = self.start_token {
            self.handle_token(ctx, p, 0);
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _from: NodeId, pkt: SimPacket) {
        let d = pkt.dgram;
        let mut payload = d.payload.clone();
        if payload.is_empty() {
            return;
        }
        match payload.get_u8() {
            TAG_TOKEN if payload.remaining() >= 8 => {
                let counter = payload.get_u64();
                self.handle_token(ctx, d.dst, counter);
            }
            TAG_DATA if payload.remaining() >= 12 => {
                let origin = ProcessId(payload.get_u32());
                let k = payload.get_u64();
                self.on_data(ctx.now(), d.dst, origin, k, d.header.psn as u64);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TOKEN_RESUME {
            if let Some((holder, counter)) = self.parked_token.take() {
                self.handle_token(ctx, holder, counter);
            }
            return;
        }
        if token >= WORK_BASE {
            let i = (token - WORK_BASE) as usize;
            if i >= self.procs.len() || self.sent[i] >= self.max_sends {
                return;
            }
            let k = self.sent[i];
            self.sent[i] += 1;
            self.probe.lock().unwrap().record_send(ctx.now(), self.procs[i], k);
            self.queued[i].push(k);
            ctx.set_timer(self.interval(), token);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::BroadcastProbe;
    use crate::plain::PlainSwitch;
    use onepipe_netsim::engine::Sim;
    use onepipe_netsim::topology::{FatTreeParams, Topology};
    use onepipe_types::process_map::ProcessMap;
    use std::sync::Arc;

    fn run_token(n: usize, rate: f64, dur: u64) -> ProbeHandle {
        let mut sim = Sim::new(4);
        let topo = Arc::new(Topology::build(&mut sim, FatTreeParams::single_rack(n as u32)));
        let procs = Arc::new(ProcessMap::place_round_robin(n, n));
        PlainSwitch::install_all(&mut sim, &topo, &procs);
        let probe = BroadcastProbe::shared();
        let all: Vec<ProcessId> = procs.all().collect();
        for h in 0..n {
            let host = HostId(h as u32);
            let mut logic = TokenHost::new(
                host,
                topo.tor_up_of(host),
                procs.processes_on(host).to_vec(),
                all.clone(),
                rate,
                u64::MAX,
                8,
                probe.clone(),
            );
            if h == 0 {
                logic.start_token = Some(ProcessId(0));
            }
            sim.set_logic(topo.host_node(host), Box::new(logic));
        }
        sim.run_until(dur);
        probe
    }

    #[test]
    fn token_ring_delivers_in_order() {
        let probe = run_token(4, 200_000.0, 2_000_000);
        assert!(probe.lock().unwrap().delivery_count() > 0);
        assert_eq!(probe.lock().unwrap().order_violations, 0);
    }

    #[test]
    fn token_throughput_bounded_by_rotation() {
        // Offered load far above what one-at-a-time can serve: deliveries
        // must lag far behind sends × receivers.
        let probe = run_token(8, 5_000_000.0, 2_000_000);
        let p = probe.lock().unwrap();
        let delivered_broadcasts = p.delivery_count() / 8;
        // 2 ms at 5 M/s per process × 8 procs = 80 000 offered broadcasts.
        assert!(
            delivered_broadcasts < 40_000,
            "token ring cannot serve saturating load, served {delivered_broadcasts}"
        );
        assert_eq!(p.order_violations, 0);
    }
}
