//! In-network processing for 1Pipe: hierarchical barrier aggregation.
//!
//! Implements the paper's three switch incarnations (§6.2):
//!
//! * [`Incarnation::Chip`] — a programmable switching chip (Tofino-style):
//!   every 1Pipe packet updates the barrier register of its input link and
//!   has its barrier fields rewritten to the switch-wide minimum on egress
//!   (eq. 4.1). Beacons are generated only on idle output links.
//! * [`Incarnation::SwitchCpu`] — a commodity chip + switch CPU: data
//!   packets are forwarded untouched; only beacons carry barrier
//!   information, recomputed periodically by the CPU with a processing
//!   delay, and sent on *every* output link each interval.
//! * [`Incarnation::HostDelegate`] — beacon processing offloaded to an
//!   end-host representative; same structure as the switch CPU but with a
//!   different (often smaller, via RDMA) processing delay plus the
//!   switch↔host round trip.
//!
//! The module also implements the decentralized failure detection of §4.2:
//! an input link that carries neither data nor beacons for a timeout
//! (default 10 beacon intervals) is removed from the best-effort minimum,
//! and a [`SwitchEvent::InLinkDead`] is emitted for the controller, which
//! later calls [`SwitchLogic::remove_commit_input`] (the Resume step of
//! §5.2) to unblock the commit barrier as well.

#![warn(missing_docs)]

pub mod barrier;
pub mod switch;

pub use barrier::BarrierAggregator;
pub use switch::{Incarnation, SwitchConfig, SwitchEvent, SwitchLogic, SwitchShared};
