//! Per-switch barrier register state and the eq. (4.1) minimum.

use onepipe_types::ids::NodeId;
use onepipe_types::time::Timestamp;

/// Barrier bookkeeping for one logical switch.
///
/// Keeps two registers per input link — one for the best-effort barrier,
/// one for the commit barrier (paper §6.2.1: "2 state registers per input
/// link") — plus liveness tracking and monotonic output clamps.
#[derive(Clone, Debug)]
pub struct BarrierAggregator {
    inputs: Vec<NodeId>,
    /// Dense NodeId → input-slot map (node ids are small and dense);
    /// `u16::MAX` marks "not an input". Barrier observations run per
    /// packet, so the slot lookup must not scan.
    index: Vec<u16>,
    /// Best-effort barrier register per input link.
    be: Vec<Timestamp>,
    /// Commit barrier register per input link.
    commit: Vec<Timestamp>,
    /// Last time anything (data or beacon) was heard on each input link.
    last_heard: Vec<u64>,
    /// Input links removed from the best-effort minimum (decentralized
    /// timeout, §4.2).
    be_dead: Vec<bool>,
    /// Input links removed from the commit minimum (only by the
    /// controller's Resume step, §5.2).
    commit_dead: Vec<bool>,
    /// Input links whose death has been *reported* to the controller
    /// (Detect, §5.2). Failure is by fiat from that point: even if the
    /// link revives (a healed partition, a falsely-accused process), its
    /// registers are frozen and it stays out of both minima until the
    /// controller explicitly re-admits it. Otherwise a zombie's barrier
    /// contributions could advance the commit barrier during the
    /// Announce→Resume window and release messages the announcement
    /// orders every receiver to discard.
    quarantined: Vec<bool>,
    /// Monotonic clamp on the outgoing best-effort barrier.
    out_be: Timestamp,
    /// Monotonic clamp on the outgoing commit barrier.
    out_commit: Timestamp,
    /// Cached [`Self::out_be`] result, valid until a best-effort
    /// register or liveness change. Only populated when the result is
    /// independent of `now` (some input live), so serving it is exact.
    /// The chip rewrites barriers per forwarded packet but registers
    /// only change ~once per beacon interval, so this hits often.
    be_cache: Option<Timestamp>,
    /// Cached [`Self::out_commit`] result (same rules).
    commit_cache: Option<Timestamp>,
    /// Number of min-computations performed (CPU cost model, Figure 13a).
    pub min_computes: u64,
}

impl BarrierAggregator {
    /// Create an aggregator over the given input links. Registers start at
    /// [`Timestamp::ZERO`]: the output barrier cannot advance until every
    /// live input link has reported.
    pub fn new(inputs: Vec<NodeId>) -> Self {
        let n = inputs.len();
        assert!(n < u16::MAX as usize, "too many input links");
        let mut index = Vec::new();
        for (i, link) in inputs.iter().enumerate() {
            let id = link.0 as usize;
            if index.len() <= id {
                index.resize(id + 1, u16::MAX);
            }
            index[id] = i as u16;
        }
        BarrierAggregator {
            inputs,
            index,
            be: vec![Timestamp::ZERO; n],
            commit: vec![Timestamp::ZERO; n],
            last_heard: vec![0; n],
            be_dead: vec![false; n],
            commit_dead: vec![false; n],
            quarantined: vec![false; n],
            out_be: Timestamp::ZERO,
            out_commit: Timestamp::ZERO,
            be_cache: None,
            commit_cache: None,
            min_computes: 0,
        }
    }

    fn index_of(&self, link: NodeId) -> Option<usize> {
        match self.index.get(link.0 as usize) {
            Some(&i) if i != u16::MAX => Some(i as usize),
            _ => None,
        }
    }

    /// The input links this aggregator watches.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Record a best-effort barrier observation on an input link.
    /// Returns `false` if the link is unknown.
    pub fn observe_be(&mut self, from: NodeId, barrier: Timestamp, now: u64) -> bool {
        let Some(i) = self.index_of(from) else { return false };
        if self.quarantined[i] {
            return true;
        }
        // FIFO links deliver non-decreasing barriers; clamp defensively so
        // a reordered packet cannot drag the register backwards. ZERO is
        // the "never heard" sentinel: the first real value replaces it
        // outright (deployment clocks may sit anywhere in the 48-bit
        // ring, where a ring-max against ZERO would misorder).
        let new = if self.be[i] == Timestamp::ZERO { barrier } else { self.be[i].max(barrier) };
        if new != self.be[i] {
            self.be[i] = new;
            self.be_cache = None;
        }
        self.last_heard[i] = now;
        // A link that speaks again leaves the best-effort dead set (§4.2
        // "addition of new hosts and links"); the monotonic output clamp
        // absorbs any regression while it catches up.
        if self.be_dead[i] {
            self.be_dead[i] = false;
            self.be_cache = None;
        }
        true
    }

    /// Record a commit barrier observation on an input link.
    pub fn observe_commit(&mut self, from: NodeId, barrier: Timestamp, now: u64) -> bool {
        let Some(i) = self.index_of(from) else { return false };
        if self.quarantined[i] {
            return true;
        }
        let new =
            if self.commit[i] == Timestamp::ZERO { barrier } else { self.commit[i].max(barrier) };
        if new != self.commit[i] {
            self.commit[i] = new;
            self.commit_cache = None;
        }
        self.last_heard[i] = now;
        true
    }

    /// Mark liveness on a link without a barrier value (e.g. a reliable
    /// data packet, which does not update barrier registers but proves the
    /// link is alive).
    pub fn observe_alive(&mut self, from: NodeId, now: u64) {
        if let Some(i) = self.index_of(from) {
            if self.quarantined[i] {
                return;
            }
            self.last_heard[i] = now;
            if self.be_dead[i] {
                self.be_dead[i] = false;
                self.be_cache = None;
            }
        }
    }

    /// Current outgoing best-effort barrier: `min` over live input links'
    /// registers, clamped monotone (eq. 4.1). `now` is the switch-local
    /// time: the min over an *empty* live set is unconstrained, so a
    /// switch whose entire subtree died emits its clock instead of
    /// pinning the network on a frozen register (the dead inputs' data
    /// is discarded by the failure announcement anyway).
    pub fn out_be(&mut self, now: u64) -> Timestamp {
        self.min_computes += 1;
        if let Some(c) = self.be_cache {
            return c;
        }
        let mut any_live = false;
        let mut min: Option<Timestamp> = None;
        for i in 0..self.inputs.len() {
            if self.be_dead[i] {
                continue;
            }
            any_live = true;
            if self.be[i] == Timestamp::ZERO {
                // A live link that has never reported pins the output at
                // "no information" (ring comparison against the ZERO
                // sentinel would be meaningless).
                self.be_cache = Some(self.out_be);
                return self.out_be;
            }
            min = Some(match min {
                None => self.be[i],
                Some(m) => m.min(self.be[i]),
            });
        }
        if !any_live && now != 0 {
            min = Some(Timestamp::from_raw(now));
        }
        if let Some(m) = min {
            self.out_be = if self.out_be == Timestamp::ZERO { m } else { self.out_be.max(m) };
        }
        if any_live {
            self.be_cache = Some(self.out_be);
        }
        self.out_be
    }

    /// Current outgoing commit barrier: `min` over commit-live input
    /// links. As with [`Self::out_be`], an empty live set (every input
    /// removed by the controller's Resume) imposes no constraint and the
    /// output tracks `now`.
    pub fn out_commit(&mut self, now: u64) -> Timestamp {
        self.min_computes += 1;
        if let Some(c) = self.commit_cache {
            return c;
        }
        let mut any_live = false;
        let mut min: Option<Timestamp> = None;
        for i in 0..self.inputs.len() {
            if self.commit_dead[i] {
                continue;
            }
            any_live = true;
            if self.commit[i] == Timestamp::ZERO {
                self.commit_cache = Some(self.out_commit);
                return self.out_commit;
            }
            min = Some(match min {
                None => self.commit[i],
                Some(m) => m.min(self.commit[i]),
            });
        }
        if !any_live && now != 0 {
            min = Some(Timestamp::from_raw(now));
        }
        if let Some(m) = min {
            self.out_commit =
                if self.out_commit == Timestamp::ZERO { m } else { self.out_commit.max(m) };
        }
        if any_live {
            self.commit_cache = Some(self.out_commit);
        }
        self.out_commit
    }

    /// Find input links silent since `now − timeout` and remove them from
    /// the best-effort minimum. Returns the newly-dead links with the last
    /// commit barrier observed on each (the Detect report of §5.2).
    pub fn detect_dead(&mut self, now: u64, timeout: u64) -> Vec<(NodeId, Timestamp)> {
        let mut dead = Vec::new();
        for i in 0..self.inputs.len() {
            if self.be_dead[i] {
                continue;
            }
            if now.saturating_sub(self.last_heard[i]) > timeout {
                self.be_dead[i] = true;
                self.be_cache = None;
                // The death is about to be reported: from here the input
                // is failed by fiat and may only rejoin via the
                // controller (`restore_input`).
                self.quarantined[i] = true;
                dead.push((self.inputs[i], self.commit[i]));
            }
        }
        dead
    }

    /// Remove an input link from the commit minimum (controller Resume).
    pub fn remove_commit_input(&mut self, from: NodeId) -> bool {
        match self.index_of(from) {
            Some(i) => {
                self.commit_dead[i] = true;
                self.commit_cache = None;
                true
            }
            None => false,
        }
    }

    /// Re-admit a recovered input link to both minima. Its registers keep
    /// their old values; the monotonic clamp hides them until the link
    /// catches up (§4.2 link-addition rule).
    pub fn restore_input(&mut self, from: NodeId, now: u64) -> bool {
        match self.index_of(from) {
            Some(i) => {
                self.be_dead[i] = false;
                self.commit_dead[i] = false;
                self.quarantined[i] = false;
                self.last_heard[i] = now;
                self.be_cache = None;
                self.commit_cache = None;
                true
            }
            None => false,
        }
    }

    /// Whether a given input link is currently excluded from the BE min.
    pub fn is_be_dead(&self, from: NodeId) -> bool {
        self.index_of(from).map(|i| self.be_dead[i]).unwrap_or(true)
    }

    /// Whether a given input link is currently excluded from the commit min.
    pub fn is_commit_dead(&self, from: NodeId) -> bool {
        self.index_of(from).map(|i| self.commit_dead[i]).unwrap_or(true)
    }

    /// The best-effort register of one input link (telemetry).
    pub fn register_be(&self, from: NodeId) -> Option<Timestamp> {
        self.index_of(from).map(|i| self.be[i])
    }

    /// The commit register of one input link (telemetry).
    pub fn register_commit(&self, from: NodeId) -> Option<Timestamp> {
        self.index_of(from).map(|i| self.commit[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: u64) -> Timestamp {
        Timestamp::from_nanos(v)
    }

    fn agg3() -> BarrierAggregator {
        BarrierAggregator::new(vec![NodeId(1), NodeId(2), NodeId(3)])
    }

    #[test]
    fn min_over_all_inputs() {
        let mut a = agg3();
        a.observe_be(NodeId(1), ts(100), 0);
        a.observe_be(NodeId(2), ts(50), 0);
        a.observe_be(NodeId(3), ts(80), 0);
        assert_eq!(a.out_be(0), ts(50));
        a.observe_be(NodeId(2), ts(120), 1);
        assert_eq!(a.out_be(0), ts(80));
    }

    #[test]
    fn stalls_until_every_link_reports() {
        let mut a = agg3();
        a.observe_be(NodeId(1), ts(100), 0);
        a.observe_be(NodeId(2), ts(100), 0);
        // Link 3 never reported → its register is ZERO → min is ZERO.
        assert_eq!(a.out_be(0), Timestamp::ZERO);
    }

    #[test]
    fn output_is_monotone_even_if_register_regresses() {
        let mut a = agg3();
        for n in 1..=3 {
            a.observe_be(NodeId(n), ts(100), 0);
        }
        assert_eq!(a.out_be(0), ts(100));
        // An out-of-order packet with an older barrier must not regress.
        a.observe_be(NodeId(2), ts(40), 1);
        assert_eq!(a.out_be(0), ts(100));
    }

    #[test]
    fn unknown_link_rejected() {
        let mut a = agg3();
        assert!(!a.observe_be(NodeId(9), ts(5), 0));
        assert!(!a.observe_commit(NodeId(9), ts(5), 0));
        assert!(!a.remove_commit_input(NodeId(9)));
        assert!(a.is_be_dead(NodeId(9)));
    }

    #[test]
    fn dead_link_detection_and_removal() {
        let mut a = agg3();
        a.observe_be(NodeId(1), ts(100), 1000);
        a.observe_be(NodeId(2), ts(90), 1000);
        a.observe_be(NodeId(3), ts(95), 10); // silent since t=10
        let dead = a.detect_dead(2000, 1500);
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].0, NodeId(3));
        // With the dead link excluded, the barrier resumes increasing.
        assert_eq!(a.out_be(0), ts(90));
        // Detect is edge-triggered: a second scan (with the other links
        // still within their timeout) reports nothing new.
        assert!(a.detect_dead(2100, 1500).is_empty());
    }

    #[test]
    fn dead_link_reports_last_commit() {
        let mut a = agg3();
        a.observe_commit(NodeId(3), ts(77), 10);
        a.observe_be(NodeId(1), ts(100), 1000);
        a.observe_be(NodeId(2), ts(90), 1000);
        let dead = a.detect_dead(2000, 1500);
        assert_eq!(dead, vec![(NodeId(3), ts(77))]);
    }

    #[test]
    fn commit_min_waits_for_controller_resume() {
        let mut a = agg3();
        a.observe_commit(NodeId(1), ts(100), 0);
        a.observe_commit(NodeId(2), ts(90), 0);
        // Link 3 never commits: commit barrier stalls at ZERO...
        assert_eq!(a.out_commit(0), Timestamp::ZERO);
        a.detect_dead(10_000, 500); // BE removal does NOT unblock commit
        assert_eq!(a.out_commit(0), Timestamp::ZERO);
        // ...until the controller's Resume removes it.
        assert!(a.remove_commit_input(NodeId(3)));
        assert_eq!(a.out_commit(0), ts(90));
    }

    #[test]
    fn reported_dead_link_is_quarantined_until_restored() {
        let mut a = agg3();
        for n in 1..=3 {
            a.observe_be(NodeId(n), ts(100), 0);
            a.observe_commit(NodeId(n), ts(100), 0);
        }
        a.detect_dead(10_000, 500);
        assert!(a.is_be_dead(NodeId(1)));
        // The death was reported: a zombie speaking again must NOT rejoin
        // the minima or advance its frozen registers (fail-stop by fiat —
        // a healed partition cannot release uncommitted messages during
        // the Announce→Resume window).
        a.observe_be(NodeId(1), ts(200), 10_001);
        a.observe_commit(NodeId(1), ts(200), 10_001);
        a.observe_alive(NodeId(1), 10_002);
        assert!(a.is_be_dead(NodeId(1)));
        assert_eq!(a.register_commit(NodeId(1)), Some(ts(100)));
        // Only the controller re-admits it.
        a.restore_input(NodeId(1), 10_003);
        assert!(!a.is_be_dead(NodeId(1)));
        a.observe_commit(NodeId(1), ts(200), 10_004);
        assert_eq!(a.register_commit(NodeId(1)), Some(ts(200)));
    }

    #[test]
    fn restore_input_readmits_to_both_minima() {
        let mut a = agg3();
        for n in 1..=3 {
            a.observe_be(NodeId(n), ts(100), 0);
            a.observe_commit(NodeId(n), ts(100), 0);
        }
        a.remove_commit_input(NodeId(2));
        a.observe_commit(NodeId(1), ts(200), 1);
        a.observe_commit(NodeId(3), ts(200), 1);
        assert_eq!(a.out_commit(0), ts(200));
        // Restore: link 2's stale register (100) is below the clamp (200),
        // so the output holds at 200 until link 2 catches up.
        a.restore_input(NodeId(2), 2);
        assert_eq!(a.out_commit(0), ts(200));
        a.observe_commit(NodeId(2), ts(300), 3);
        a.observe_commit(NodeId(1), ts(300), 3);
        a.observe_commit(NodeId(3), ts(300), 3);
        assert_eq!(a.out_commit(0), ts(300));
    }

    #[test]
    fn alive_observation_defers_death() {
        let mut a = agg3();
        for n in 1..=3 {
            a.observe_be(NodeId(n), ts(10), 0);
        }
        a.observe_alive(NodeId(3), 1900); // reliable data keeps it alive
        let dead = a.detect_dead(2000, 500);
        assert_eq!(dead.len(), 2);
        assert!(!a.is_be_dead(NodeId(3)));
    }
}
