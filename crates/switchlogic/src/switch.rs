//! The switch node logic: forwarding + barrier aggregation + beacons.

use crate::barrier::BarrierAggregator;
use bytes::Bytes;
use onepipe_netsim::engine::{Ctx, NodeLogic, SimPacket};
use onepipe_netsim::topology::Topology;
use onepipe_types::ids::{NodeId, ProcessId};
use onepipe_types::process_map::ProcessMap;
use onepipe_types::time::{Duration, Timestamp, MICROS};
use onepipe_types::wire::{Datagram, Flags, Opcode, PacketHeader};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Sentinel process id used on hop-by-hop packets (beacons) that have no
/// process-level source or destination.
pub const HOP_LOCAL: ProcessId = ProcessId(u32::MAX);

/// Timer token: periodic beacon / dead-link scan.
const TOKEN_BEACON: u64 = 1;
/// Timer token: delayed beacon emission (CPU / host-delegate incarnations).
const TOKEN_EMIT: u64 = 2;
/// Timer token: coalesced chip relay (fires after all same-instant events).
const TOKEN_RELAY: u64 = 3;

/// Which of the paper's three implementations this switch runs (§6.2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Incarnation {
    /// Programmable switching chip: per-packet barrier processing in the
    /// data plane; beacons only on idle links.
    Chip,
    /// Switch CPU: barriers travel only in beacons, recomputed and
    /// broadcast every interval after `processing_delay`.
    SwitchCpu {
        /// CPU processing delay per beacon round (OS stack: ~5 µs;
        /// raw sockets: ~1 µs).
        processing_delay: Duration,
    },
    /// End-host representative: like [`Incarnation::SwitchCpu`] but the
    /// delay includes the switch↔host round trip (the testbed default).
    HostDelegate {
        /// Host processing + switch↔host RTT per beacon round (~2 µs).
        processing_delay: Duration,
    },
}

impl Incarnation {
    /// The testbed's host-delegation setup (§7.1).
    pub fn testbed_host_delegate() -> Self {
        Incarnation::HostDelegate { processing_delay: 2 * MICROS }
    }

    /// Extra emission delay of this incarnation.
    pub fn processing_delay(&self) -> Duration {
        match *self {
            Incarnation::Chip => 0,
            Incarnation::SwitchCpu { processing_delay } => processing_delay,
            Incarnation::HostDelegate { processing_delay } => processing_delay,
        }
    }
}

/// Static switch configuration.
#[derive(Clone, Copy, Debug)]
pub struct SwitchConfig {
    /// The implementation variant.
    pub incarnation: Incarnation,
    /// Beacon interval (paper testbed: 3 µs).
    pub beacon_interval: Duration,
    /// An input link is dead after this many silent beacon intervals (§4.2:
    /// "e.g., 10 beacon intervals").
    pub dead_after_intervals: u64,
    /// Send beacons at globally synchronized phase (§4.2) rather than at a
    /// random per-switch phase (ablation b in DESIGN.md).
    pub synchronized_beacons: bool,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            incarnation: Incarnation::Chip,
            beacon_interval: 3 * MICROS,
            dead_after_intervals: 10,
            synchronized_beacons: true,
        }
    }
}

/// Failure-related events surfaced to the harness/controller.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SwitchEvent {
    /// An input link went silent past the timeout; carries the last commit
    /// barrier observed on it (the Detect report of §5.2).
    InLinkDead {
        /// The reporting switch.
        switch: NodeId,
        /// The silent upstream neighbor.
        from: NodeId,
        /// Last commit barrier seen on the link.
        last_commit: Timestamp,
        /// Detection time (ns).
        at: u64,
    },
}

/// State shared by every switch in one simulation.
#[derive(Clone)]
pub struct SwitchShared {
    /// The routing topology.
    pub topo: Arc<Topology>,
    /// Process → host placement (routing key).
    pub procs: Arc<ProcessMap>,
    /// Outbox of failure events, drained by the harness.
    pub events: Arc<Mutex<Vec<SwitchEvent>>>,
}

/// Per-switch traffic counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct SwitchCounters {
    /// Beacons received (and absorbed).
    pub beacons_rx: u64,
    /// Beacons transmitted.
    pub beacons_tx: u64,
    /// Commit messages absorbed.
    pub commits_rx: u64,
    /// Data/ack packets forwarded.
    pub forwarded: u64,
    /// Packets dropped (unroutable destination).
    pub unroutable: u64,
}

/// Sentinel for "no beacon ever sent" on an output port.
const NEVER_TX: u64 = u64::MAX;

/// Per-output-link transmit state, stored densely in the out-neighbor
/// order of the switch (the forwarding path updates it per packet, so
/// it must not hash).
#[derive(Clone, Copy, Debug)]
struct OutPort {
    /// The downstream neighbor this port leads to.
    to: NodeId,
    /// Last time a barrier-carrying packet left on this link.
    last_tx: u64,
    /// Last time a beacon left on this link (relay rate limiting).
    last_beacon_tx: u64,
    /// Barrier values most recently advertised on this link, whether by
    /// a rewritten data packet or a beacon.
    advertised: (Timestamp, Timestamp),
}

/// Node logic of one logical switch (an up- or down-half).
pub struct SwitchLogic {
    shared: SwitchShared,
    cfg: SwitchConfig,
    agg: BarrierAggregator,
    /// Output-port state, parallel to the node's out-neighbor list.
    ports: Vec<OutPort>,
    /// Beacon values awaiting delayed emission (CPU/delegate modes).
    pending_emissions: VecDeque<(Timestamp, Timestamp)>,
    /// CPU/delegate: an emission is already scheduled.
    emission_pending: bool,
    /// Chip: a coalesced relay is already scheduled.
    relay_pending: bool,
    /// Counters for the overhead experiments.
    pub counters: SwitchCounters,
    started: bool,
}

impl SwitchLogic {
    /// Create the logic for one switch node.
    pub fn new(shared: SwitchShared, cfg: SwitchConfig) -> Self {
        SwitchLogic {
            shared,
            cfg,
            agg: BarrierAggregator::new(Vec::new()),
            ports: Vec::new(),
            pending_emissions: VecDeque::new(),
            emission_pending: false,
            relay_pending: false,
            counters: SwitchCounters::default(),
            started: false,
        }
    }

    /// Controller Resume (§5.2): stop waiting for commits from `from`.
    pub fn remove_commit_input(&mut self, from: NodeId) -> bool {
        self.agg.remove_commit_input(from)
    }

    /// Re-admit a recovered input link.
    pub fn restore_input(&mut self, from: NodeId, now: u64) -> bool {
        self.agg.restore_input(from, now)
    }

    /// Immutable access to the aggregator (tests, telemetry).
    pub fn aggregator(&self) -> &BarrierAggregator {
        &self.agg
    }

    /// Mutable access to the aggregator.
    pub fn aggregator_mut(&mut self) -> &mut BarrierAggregator {
        &mut self.agg
    }

    fn beacon_dgram(be: Timestamp, commit: Timestamp) -> Datagram {
        Datagram {
            src: HOP_LOCAL,
            dst: HOP_LOCAL,
            header: PacketHeader {
                msg_ts: Timestamp::ZERO,
                barrier: be,
                commit_barrier: commit,
                psn: 0,
                opcode: Opcode::Beacon,
                flags: Flags::empty(),
            },
            payload: Bytes::new(),
        }
    }

    fn arm_beacon_timer(&self, ctx: &mut Ctx<'_>) {
        let t = self.cfg.beacon_interval;
        let delay = if self.cfg.synchronized_beacons {
            t - (ctx.now() % t)
        } else {
            // Random phase: desynchronized beacons (ablation).
            use rand::Rng;
            ctx.rng().random_range(1..=t)
        };
        ctx.set_timer(delay, TOKEN_BEACON);
    }

    /// Resolve the live ECMP next hop for `pkt`'s destination, counting
    /// unroutable packets. The single routing lookup shared by the plain
    /// and barrier-rewriting forwarding paths.
    fn next_hop(&mut self, ctx: &Ctx<'_>, pkt: &SimPacket) -> Option<NodeId> {
        let Some(dst_host) = self.shared.procs.host_of(pkt.dgram.dst) else {
            self.counters.unroutable += 1;
            return None;
        };
        let src_host =
            self.shared.procs.host_of(pkt.dgram.src).unwrap_or(onepipe_types::ids::HostId(0));
        let next = self
            .shared
            .topo
            .route_live(ctx.node(), src_host, dst_host, |a, b| ctx.global_link_is_up(a, b));
        if next.is_none() {
            self.counters.unroutable += 1;
        }
        next
    }

    /// The output-port slot leading to `to`.
    fn port_index(&self, to: NodeId) -> Option<usize> {
        self.ports.iter().position(|p| p.to == to)
    }

    fn forward(&mut self, ctx: &mut Ctx<'_>, pkt: SimPacket) {
        let Some(next) = self.next_hop(ctx, &pkt) else { return };
        self.counters.forwarded += 1;
        ctx.send(next, pkt);
    }

    /// Forward with per-packet barrier rewrite (chip incarnation).
    fn forward_rewritten(&mut self, ctx: &mut Ctx<'_>, mut pkt: SimPacket) {
        let Some(next) = self.next_hop(ctx, &pkt) else { return };
        let now = ctx.now();
        let be = self.agg.out_be(now);
        let commit = self.agg.out_commit(now);
        pkt.dgram.header.barrier = be;
        pkt.dgram.header.commit_barrier = commit;
        if let Some(i) = self.port_index(next) {
            let p = &mut self.ports[i];
            p.last_tx = now;
            p.advertised.0 = p.advertised.0.max(be);
            p.advertised.1 = p.advertised.1.max(commit);
        }
        self.counters.forwarded += 1;
        ctx.send(next, pkt);
    }

    fn emit_beacons(&mut self, ctx: &mut Ctx<'_>, be: Timestamp, commit: Timestamp) {
        for &out in ctx.out_neighbors() {
            self.counters.beacons_tx += 1;
            ctx.send(out, SimPacket::new(Self::beacon_dgram(be, commit)));
        }
    }

    fn is_chip(&self) -> bool {
        matches!(self.cfg.incarnation, Incarnation::Chip)
    }

    /// Chip incarnation: when the aggregated barrier advances, relay it
    /// promptly on every output link that has not already carried the new
    /// value (rate-limited per link). This is what keeps the chip's
    /// end-to-end barrier staleness at ~beacon_interval/2 total rather
    /// than per hop (§6.2.1's expected-delay formula). Busy links are
    /// covered for free by rewritten data packets, which also update the
    /// per-link advertisement.
    fn relay_if_advanced(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let be = self.agg.out_be(now);
        let commit = self.agg.out_commit(now);
        let min_gap = self.cfg.beacon_interval / 16;
        for i in 0..self.ports.len() {
            let p = &mut self.ports[i];
            let adv = p.advertised;
            if be <= adv.0 && commit <= adv.1 {
                continue;
            }
            if p.last_beacon_tx != NEVER_TX && now.saturating_sub(p.last_beacon_tx) < min_gap {
                continue; // periodic backstop will carry it
            }
            p.advertised = (adv.0.max(be), adv.1.max(commit));
            p.last_beacon_tx = now;
            let to = p.to;
            self.counters.beacons_tx += 1;
            ctx.send(to, SimPacket::new(Self::beacon_dgram(be, commit)));
        }
    }

    /// Chip: coalesce relays of simultaneous beacon arrivals (one wave of
    /// synchronized host beacons lands in the same instant) so the relay
    /// carries the fully aggregated minimum, not the first fragment.
    fn schedule_relay(&mut self, ctx: &mut Ctx<'_>) {
        if self.relay_pending {
            return;
        }
        self.relay_pending = true;
        ctx.set_timer(0, TOKEN_RELAY);
    }

    /// CPU/delegate incarnations: schedule one (re)computation+broadcast
    /// `processing_delay` after fresh barrier input, if none is pending.
    fn schedule_emission(&mut self, ctx: &mut Ctx<'_>) {
        if self.emission_pending {
            return;
        }
        self.emission_pending = true;
        ctx.set_timer(self.cfg.incarnation.processing_delay().max(1), TOKEN_EMIT);
    }
}

impl NodeLogic for SwitchLogic {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if !self.started {
            self.agg = BarrierAggregator::new(ctx.in_neighbors().to_vec());
            self.ports = ctx
                .out_neighbors()
                .iter()
                .map(|&to| OutPort {
                    to,
                    last_tx: 0,
                    last_beacon_tx: NEVER_TX,
                    advertised: (Timestamp::ZERO, Timestamp::ZERO),
                })
                .collect();
            self.started = true;
        }
        self.arm_beacon_timer(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, from: NodeId, pkt: SimPacket) {
        let now = ctx.now();
        let h = pkt.dgram.header;
        match h.opcode {
            Opcode::Beacon => {
                self.counters.beacons_rx += 1;
                self.agg.observe_be(from, h.barrier, now);
                self.agg.observe_commit(from, h.commit_barrier, now);
                // Hop-by-hop: absorbed here; relayed promptly if the
                // aggregate advanced.
                if self.is_chip() {
                    self.schedule_relay(ctx);
                } else {
                    self.schedule_emission(ctx);
                }
            }
            Opcode::Commit => {
                self.counters.commits_rx += 1;
                self.agg.observe_commit(from, h.commit_barrier, now);
                self.agg.observe_alive(from, now);
                // Commit messages die at the first-hop switch (Figure 6).
                if self.is_chip() {
                    self.schedule_relay(ctx);
                } else {
                    self.schedule_emission(ctx);
                }
            }
            Opcode::Data => {
                if self.is_chip() {
                    self.agg.observe_be(from, h.barrier, now);
                    self.agg.observe_commit(from, h.commit_barrier, now);
                    self.forward_rewritten(ctx, pkt);
                    self.schedule_relay(ctx);
                } else {
                    // Commodity chip: data plane cannot touch barriers.
                    self.forward(ctx, pkt);
                }
            }
            Opcode::DataReliable => {
                // Prepare-phase packets do NOT update barrier registers
                // (§5.1) but do prove link liveness.
                if self.is_chip() {
                    self.agg.observe_alive(from, now);
                    self.forward_rewritten(ctx, pkt);
                } else {
                    self.forward(ctx, pkt);
                }
            }
            Opcode::Ack | Opcode::Nak | Opcode::Recall | Opcode::RecallAck => {
                if self.is_chip() {
                    self.agg.observe_alive(from, now);
                    self.forward_rewritten(ctx, pkt);
                } else {
                    self.forward(ctx, pkt);
                }
            }
            Opcode::Control | Opcode::Mgmt => {
                // Non-1Pipe traffic (raw RPC, management plane): plain
                // forwarding, no bookkeeping.
                self.forward(ctx, pkt);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            TOKEN_BEACON => {
                let now = ctx.now();
                let timeout = self.cfg.beacon_interval * self.cfg.dead_after_intervals;
                for (from, last_commit) in self.agg.detect_dead(now, timeout) {
                    self.shared.events.lock().unwrap().push(SwitchEvent::InLinkDead {
                        switch: ctx.node(),
                        from,
                        last_commit,
                        at: now,
                    });
                }
                let be = self.agg.out_be(ctx.now());
                let commit = self.agg.out_commit(ctx.now());
                match self.cfg.incarnation {
                    Incarnation::Chip => {
                        // Beacons only on links idle for a full interval.
                        for i in 0..self.ports.len() {
                            let p = self.ports[i];
                            if now.saturating_sub(p.last_tx) >= self.cfg.beacon_interval {
                                self.counters.beacons_tx += 1;
                                ctx.send(p.to, SimPacket::new(Self::beacon_dgram(be, commit)));
                            }
                        }
                    }
                    Incarnation::SwitchCpu { .. } | Incarnation::HostDelegate { .. } => {
                        // Periodic backstop broadcast (idle network).
                        let _ = (be, commit);
                        self.schedule_emission(ctx);
                    }
                }
                self.arm_beacon_timer(ctx);
            }
            TOKEN_RELAY => {
                self.relay_pending = false;
                self.relay_if_advanced(ctx);
            }
            TOKEN_EMIT => {
                // CPU/delegate: the processing delay has elapsed; compute
                // the minima and broadcast on every output link.
                self.emission_pending = false;
                self.pending_emissions.clear();
                let be = self.agg.out_be(ctx.now());
                let commit = self.agg.out_commit(ctx.now());
                self.emit_beacons(ctx, be, commit);
            }
            _ => {}
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onepipe_netsim::engine::Sim;
    use onepipe_netsim::topology::FatTreeParams;
    use onepipe_types::ids::HostId;

    /// A trivial host that records barriers seen in beacons, and can send
    /// one pre-armed data packet.
    struct ProbeHost {
        tor: NodeId,
        outbox: Vec<Datagram>,
        barriers: BarrierLog,
        received: Arc<Mutex<Vec<Datagram>>>,
    }
    impl NodeLogic for ProbeHost {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for d in self.outbox.drain(..) {
                ctx.send(self.tor, SimPacket::new(d));
            }
        }
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, _from: NodeId, pkt: SimPacket) {
            let h = pkt.dgram.header;
            if h.opcode == Opcode::Beacon {
                self.barriers.lock().unwrap().push((ctx.now(), h.barrier, h.commit_barrier));
            } else {
                self.received.lock().unwrap().push(pkt.dgram);
            }
        }
    }

    type BarrierLog = Arc<Mutex<Vec<(u64, Timestamp, Timestamp)>>>;

    struct World {
        sim: Sim,
        topo: Arc<Topology>,
        shared: SwitchShared,
        barriers: Vec<BarrierLog>,
        received: Vec<Arc<Mutex<Vec<Datagram>>>>,
    }

    /// Build a single-rack world with `n` probe hosts; host i's outbox is
    /// `outboxes[i]`.
    fn build_world(n: u32, cfg: SwitchConfig, mut outboxes: Vec<Vec<Datagram>>) -> World {
        let mut sim = Sim::new(99);
        let topo = Arc::new(Topology::build(&mut sim, FatTreeParams::single_rack(n)));
        let procs = Arc::new(ProcessMap::place_round_robin(n as usize, n as usize));
        let shared =
            SwitchShared { topo: topo.clone(), procs, events: Arc::new(Mutex::new(Vec::new())) };
        for &s in &topo.switch_nodes {
            sim.set_logic(s, Box::new(SwitchLogic::new(shared.clone(), cfg)));
        }
        let mut barriers = Vec::new();
        let mut received = Vec::new();
        for h in 0..n {
            let b = Arc::new(Mutex::new(Vec::new()));
            let r = Arc::new(Mutex::new(Vec::new()));
            let outbox = if (h as usize) < outboxes.len() {
                std::mem::take(&mut outboxes[h as usize])
            } else {
                Vec::new()
            };
            sim.set_logic(
                topo.host_node(HostId(h)),
                Box::new(ProbeHost {
                    tor: topo.tor_up_of(HostId(h)),
                    outbox,
                    barriers: b.clone(),
                    received: r.clone(),
                }),
            );
            barriers.push(b);
            received.push(r);
        }
        World { sim, topo, shared, barriers, received }
    }

    fn data_dgram(src: u32, dst: u32, ts: u64) -> Datagram {
        Datagram {
            src: ProcessId(src),
            dst: ProcessId(dst),
            header: PacketHeader::data(Timestamp::from_nanos(ts), 0, Flags::END_OF_MESSAGE),
            payload: Bytes::from_static(b"payload"),
        }
    }

    #[test]
    fn data_is_routed_between_hosts() {
        let mut w = build_world(4, SwitchConfig::default(), vec![vec![data_dgram(0, 3, 1000)]]);
        w.sim.run_until(100_000);
        let got = w.received[3].lock().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].src, ProcessId(0));
    }

    #[test]
    fn chip_rewrites_barrier_to_minimum() {
        // Host 0 sends a data packet; without beacons from hosts 1..3 the
        // ToR's min is ZERO, so the rewritten barrier must be ZERO, not the
        // sender's msg_ts.
        let mut w = build_world(4, SwitchConfig::default(), vec![vec![data_dgram(0, 3, 5_000)]]);
        w.sim.run_until(2_000); // before any host beacons exist
        let got = w.received[3].lock().unwrap();
        if let Some(d) = got.first() {
            assert_eq!(d.header.barrier, Timestamp::ZERO);
            assert_eq!(d.header.msg_ts, Timestamp::from_nanos(5_000));
        }
    }

    #[test]
    fn beacons_flow_to_hosts_when_idle() {
        let mut w = build_world(2, SwitchConfig::default(), vec![]);
        w.sim.run_until(50_000);
        // Switch beacons reach hosts even with zero data traffic.
        assert!(!w.barriers[0].lock().unwrap().is_empty());
        assert!(!w.barriers[1].lock().unwrap().is_empty());
    }

    #[test]
    fn barrier_advances_only_after_all_hosts_beacon() {
        // Hosts in this probe world never send host beacons, so switch
        // registers for host links stay ZERO and the barrier to hosts must
        // stay ZERO forever (until dead-link timeout).
        let cfg = SwitchConfig::default();
        let mut w = build_world(2, cfg, vec![]);
        w.sim.run_until(20_000); // < 30 µs dead-link timeout
        for (_, be, _) in w.barriers[0].lock().unwrap().iter() {
            assert_eq!(*be, Timestamp::ZERO);
        }
    }

    #[test]
    fn dead_host_link_detected_and_reported() {
        let cfg = SwitchConfig::default();
        let mut w = build_world(2, cfg, vec![]);
        w.sim.run_until(200_000); // 200 µs >> 30 µs timeout
        let events = w.shared.events.lock().unwrap();
        // Both silent host links (and no fabric links, which carry beacons)
        // must be reported dead by the ToR-up switch.
        let host_nodes: Vec<NodeId> = (0..2).map(|h| w.topo.host_node(HostId(h))).collect();
        let dead_from: Vec<NodeId> =
            events.iter().map(|SwitchEvent::InLinkDead { from, .. }| *from).collect();
        for hn in host_nodes {
            assert!(dead_from.contains(&hn), "host link {hn:?} not reported");
        }
    }

    #[test]
    fn after_dead_removal_barrier_resumes() {
        // With all (silent) host links timed out, the remaining inputs are
        // fabric links which do carry beacons — but fabric barriers are in
        // turn stalled by the hosts... in a single-rack topology the ToR-up
        // inputs are only host links, so after removal the min is over an
        // empty set and holds; the ToR-down's input is the virtual link
        // from ToR-up. The observable effect: barrier stays ZERO but the
        // system does not crash, and events fire exactly once per link.
        let mut w = build_world(2, SwitchConfig::default(), vec![]);
        w.sim.run_until(500_000);
        let events = w.shared.events.lock().unwrap();
        let dead_count = events.len();
        drop(events);
        w.sim.run_until(1_000_000);
        assert_eq!(w.shared.events.lock().unwrap().len(), dead_count, "re-reported dead links");
    }

    #[test]
    fn cpu_incarnation_does_not_rewrite_data() {
        let cfg = SwitchConfig {
            incarnation: Incarnation::SwitchCpu { processing_delay: 5 * MICROS },
            ..SwitchConfig::default()
        };
        let mut w = build_world(4, cfg, vec![vec![data_dgram(0, 3, 5_000)]]);
        w.sim.run_until(100_000);
        let got = w.received[3].lock().unwrap();
        assert_eq!(got.len(), 1);
        // CPU mode leaves the sender-initialized barrier field untouched.
        assert_eq!(got[0].header.barrier, Timestamp::from_nanos(5_000));
    }

    #[test]
    fn cpu_incarnation_beacons_on_busy_links_too() {
        let chip = build_world(2, SwitchConfig::default(), vec![]);
        let cpu_cfg = SwitchConfig {
            incarnation: Incarnation::SwitchCpu { processing_delay: MICROS },
            ..SwitchConfig::default()
        };
        let cpu = build_world(2, cpu_cfg, vec![]);
        let mut chip = chip;
        let mut cpu = cpu;
        chip.sim.run_until(100_000);
        cpu.sim.run_until(100_000);
        // Both deliver beacons; CPU-mode beacons are delayed by processing.
        assert!(!chip.barriers[0].lock().unwrap().is_empty());
        assert!(!cpu.barriers[0].lock().unwrap().is_empty());
    }

    #[test]
    fn commit_message_updates_commit_register() {
        let cfg = SwitchConfig::default();
        let commit_dgram = Datagram {
            src: ProcessId(0),
            dst: HOP_LOCAL,
            header: PacketHeader {
                msg_ts: Timestamp::ZERO,
                barrier: Timestamp::ZERO,
                commit_barrier: Timestamp::from_nanos(777),
                psn: 0,
                opcode: Opcode::Commit,
                flags: Flags::empty(),
            },
            payload: Bytes::new(),
        };
        let mut w = build_world(2, cfg, vec![vec![commit_dgram]]);
        let tor_up = w.topo.tor_up_of(HostId(0));
        w.sim.run_until(10_000);
        let host0 = w.topo.host_node(HostId(0));
        w.sim.with_node(tor_up, |logic, _ctx| {
            let sw = logic.as_any_mut().unwrap().downcast_mut::<SwitchLogic>().unwrap();
            // The commit register for host 0's link holds 777; the *output*
            // commit barrier is still ZERO because host 1 never committed.
            assert_eq!(sw.aggregator_mut().out_commit(0), Timestamp::ZERO);
            assert!(!sw.aggregator().is_be_dead(host0));
        });
    }

    #[test]
    fn switch_admin_downcast_roundtrip() {
        let mut w = build_world(2, SwitchConfig::default(), vec![]);
        let tor_up = w.topo.tor_up_of(HostId(0));
        let host1 = w.topo.host_node(HostId(1));
        w.sim.run_until(1_000);
        let removed = w
            .sim
            .with_node(tor_up, |logic, _| {
                let sw = logic.as_any_mut().unwrap().downcast_mut::<SwitchLogic>().unwrap();
                sw.remove_commit_input(host1)
            })
            .unwrap();
        assert!(removed);
    }
}
