//! Application-level message and scattering types.

use crate::ids::{ProcessId, ScatteringId};
use crate::time::Timestamp;
use bytes::Bytes;

/// One message: a destination plus an opaque payload.
///
/// A unicast send is a scattering of size one; the paper's
/// `onepipe_*_send(vec[<dst, msg>])` API takes a vector of these.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Message {
    /// Destination process.
    pub dst: ProcessId,
    /// Application payload.
    pub payload: Bytes,
}

impl Message {
    /// Convenience constructor.
    pub fn new(dst: ProcessId, payload: impl Into<Bytes>) -> Self {
        Message { dst, payload: payload.into() }
    }
}

/// A scattering: a group of messages to different destinations that occupy
/// the *same position* in the total order (all stamped with one timestamp).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Scattering {
    /// Unique id `(sender, sender-local seq)`.
    pub id: ScatteringId,
    /// The shared message timestamp; assigned at send time.
    pub ts: Timestamp,
    /// The member messages. Destinations may repeat (multiple messages to
    /// the same receiver within one scattering are delivered in vec order).
    pub messages: Vec<Message>,
}

impl Scattering {
    /// Number of member messages.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// True when the scattering has no member messages.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// Iterator over the distinct destinations.
    pub fn destinations(&self) -> impl Iterator<Item = ProcessId> + '_ {
        let mut seen = Vec::new();
        self.messages.iter().filter_map(move |m| {
            if seen.contains(&m.dst) {
                None
            } else {
                seen.push(m.dst);
                Some(m.dst)
            }
        })
    }
}

/// The total-order key: `(timestamp, sender)` — ties between timestamps are
/// broken by sender id (paper §4.1: "ties are broken through sender ID"),
/// and within one sender by the scattering sequence number.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct OrderKey {
    /// The message timestamp.
    pub ts: Timestamp,
    /// The sending process (tie breaker).
    pub sender: ProcessId,
    /// Sender-local sequence (second tie breaker; a sender may emit several
    /// scatterings with the same clock reading).
    pub seq: u64,
}

impl PartialOrd for OrderKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.ts.cmp(&other.ts).then(self.sender.cmp(&other.sender)).then(self.seq.cmp(&other.seq))
    }
}

/// A message delivered to the application, in total order.
///
/// Corresponds to the paper's `TS, src, msg = onepipe_*_recv()`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Delivered {
    /// The message timestamp (the scattering's position in the total order).
    pub ts: Timestamp,
    /// The sending process.
    pub src: ProcessId,
    /// Sender-local scattering sequence number.
    pub seq: u64,
    /// Application payload.
    pub payload: Bytes,
}

impl Delivered {
    /// The total-order key of this delivery.
    pub fn order_key(&self) -> OrderKey {
        OrderKey { ts: self.ts, sender: self.src, seq: self.seq }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_key_total_order() {
        let a = OrderKey { ts: Timestamp::from_nanos(10), sender: ProcessId(2), seq: 0 };
        let b = OrderKey { ts: Timestamp::from_nanos(10), sender: ProcessId(3), seq: 0 };
        let c = OrderKey { ts: Timestamp::from_nanos(11), sender: ProcessId(1), seq: 0 };
        let d = OrderKey { ts: Timestamp::from_nanos(10), sender: ProcessId(2), seq: 1 };
        assert!(a < b); // tie broken by sender
        assert!(b < c); // timestamp dominates
        assert!(a < d); // tie broken by seq
        assert!(d < b);
    }

    #[test]
    fn scattering_destinations_dedup() {
        let sc = Scattering {
            id: ScatteringId { sender: ProcessId(0), seq: 0 },
            ts: Timestamp::ZERO,
            messages: vec![
                Message::new(ProcessId(1), "a"),
                Message::new(ProcessId(2), "b"),
                Message::new(ProcessId(1), "c"),
            ],
        };
        let dsts: Vec<_> = sc.destinations().collect();
        assert_eq!(dsts, vec![ProcessId(1), ProcessId(2)]);
        assert_eq!(sc.len(), 3);
        assert!(!sc.is_empty());
    }

    #[test]
    fn delivered_order_key_matches_fields() {
        let d = Delivered {
            ts: Timestamp::from_nanos(42),
            src: ProcessId(5),
            seq: 3,
            payload: Bytes::from_static(b"x"),
        };
        let k = d.order_key();
        assert_eq!(k.ts, Timestamp::from_nanos(42));
        assert_eq!(k.sender, ProcessId(5));
        assert_eq!(k.seq, 3);
    }
}
