//! Shared error type.

use crate::ids::ProcessId;
use crate::time::Timestamp;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by 1Pipe components.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Error {
    /// A wire buffer was shorter than the structure being decoded.
    Truncated {
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// Unknown opcode byte on the wire.
    BadOpcode(u8),
    /// A batch frame header was malformed (unknown version byte).
    BadFrameVersion(u8),
    /// The send buffer is full; the application should retry later
    /// (paper §6.1: "If the send buffer is full, the send API returns fail").
    SendBufferFull,
    /// The destination process is not registered / unknown.
    UnknownProcess(ProcessId),
    /// The process has been declared failed by the controller and may no
    /// longer send.
    ProcessFailed(ProcessId),
    /// A message could not be delivered; carried by the send-failure
    /// callback of the best-effort service.
    SendFailed {
        /// Timestamp of the failed message.
        ts: Timestamp,
        /// Intended destination.
        dst: ProcessId,
    },
    /// A reliable scattering was recalled (aborted) due to a receiver
    /// failure before it could commit.
    Recalled {
        /// Timestamp of the recalled scattering.
        ts: Timestamp,
    },
    /// The endpoint has been shut down.
    Closed,
    /// Transport-level I/O failure (UDP transport only).
    Io(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Truncated { needed, got } => {
                write!(f, "truncated buffer: needed {needed} bytes, got {got}")
            }
            Error::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            Error::BadFrameVersion(v) => write!(f, "unknown batch frame version {v}"),
            Error::SendBufferFull => write!(f, "send buffer full"),
            Error::UnknownProcess(p) => write!(f, "unknown process {p:?}"),
            Error::ProcessFailed(p) => write!(f, "process {p:?} has failed"),
            Error::SendFailed { ts, dst } => {
                write!(f, "send of message ts={ts:?} to {dst:?} failed")
            }
            Error::Recalled { ts } => write!(f, "scattering ts={ts:?} was recalled"),
            Error::Closed => write!(f, "endpoint closed"),
            Error::Io(e) => write!(f, "transport I/O error: {e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::Truncated { needed: 24, got: 3 };
        assert!(e.to_string().contains("24"));
        assert!(e.to_string().contains("3"));
        let e = Error::BadOpcode(0xFF);
        assert!(e.to_string().contains("0xff"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::other("boom");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
        assert!(e.to_string().contains("boom"));
    }
}
