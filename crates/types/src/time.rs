//! 48-bit wrapping nanosecond timestamps.
//!
//! The paper (§6.1) uses a 48-bit integer counting nanoseconds on the host
//! and handles wrap-around with PAWS (RFC 1323): two timestamps are compared
//! by the *sign of their difference* in the 48-bit ring, so ordering remains
//! correct as long as two live timestamps are never more than half the ring
//! (~39 hours) apart.

/// Number of bits in a 1Pipe timestamp.
pub const TIMESTAMP_BITS: u32 = 48;

/// Bit mask selecting the low 48 bits.
pub const TIMESTAMP_MASK: u64 = (1 << TIMESTAMP_BITS) - 1;

/// Half the timestamp ring; differences beyond this wrap negative.
const HALF_RING: u64 = 1 << (TIMESTAMP_BITS - 1);

/// A span of simulated or wall-clock time in nanoseconds.
///
/// Unlike [`Timestamp`] this does not wrap; it is used for intervals
/// (beacon periods, RTTs, timeouts) which are always far below 2^48 ns.
pub type Duration = u64;

/// One microsecond in nanoseconds.
pub const MICROS: Duration = 1_000;
/// One millisecond in nanoseconds.
pub const MILLIS: Duration = 1_000_000;
/// One second in nanoseconds.
pub const SECONDS: Duration = 1_000_000_000;

/// A 48-bit wrapping nanosecond timestamp, ordered PAWS-style.
///
/// `Ord` is implemented with wrap-around semantics: `a < b` iff the signed
/// 48-bit difference `b - a` is positive. This gives a total order on any
/// window of timestamps narrower than half the ring, which is what both the
/// paper's switches and receivers rely on.
///
/// ```
/// use onepipe_types::time::{Timestamp, TIMESTAMP_MASK};
/// let near_wrap = Timestamp::from_raw(TIMESTAMP_MASK - 10);
/// let wrapped = near_wrap.saturating_add(100);
/// assert!(near_wrap < wrapped); // ordering survives wrap-around
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The zero timestamp (start of the epoch / ring origin).
    pub const ZERO: Timestamp = Timestamp(0);

    /// Construct from a raw nanosecond count, truncating to 48 bits.
    #[inline]
    pub const fn from_raw(ns: u64) -> Self {
        Timestamp(ns & TIMESTAMP_MASK)
    }

    /// Construct from a nanosecond count that is known to fit in 48 bits.
    ///
    /// Identical to [`from_raw`](Self::from_raw); provided for call sites
    /// that want to document the invariant.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Self::from_raw(ns)
    }

    /// The raw 48-bit value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Add a duration, wrapping in the 48-bit ring.
    #[inline]
    pub const fn wrapping_add(self, d: Duration) -> Self {
        Timestamp((self.0.wrapping_add(d)) & TIMESTAMP_MASK)
    }

    /// Alias of [`wrapping_add`](Self::wrapping_add) — 48-bit addition never
    /// overflows the underlying u64, it only wraps the ring.
    #[inline]
    pub const fn saturating_add(self, d: Duration) -> Self {
        self.wrapping_add(d)
    }

    /// Signed difference `self - other` interpreted in the 48-bit ring.
    ///
    /// Positive iff `self` is logically after `other`.
    #[inline]
    pub fn diff(self, other: Timestamp) -> i64 {
        let d = self.0.wrapping_sub(other.0) & TIMESTAMP_MASK;
        if d >= HALF_RING {
            d as i64 - (1i64 << TIMESTAMP_BITS)
        } else {
            d as i64
        }
    }

    /// Non-negative distance from `other` to `self`, assuming `self >= other`.
    ///
    /// Returns 0 when `self` is logically before `other`.
    #[inline]
    pub fn since(self, other: Timestamp) -> Duration {
        let d = self.diff(other);
        if d < 0 {
            0
        } else {
            d as u64
        }
    }

    /// The later of two timestamps in ring order.
    #[inline]
    pub fn max(self, other: Timestamp) -> Timestamp {
        if self < other {
            other
        } else {
            self
        }
    }

    /// The earlier of two timestamps in ring order.
    #[inline]
    pub fn min(self, other: Timestamp) -> Timestamp {
        if self < other {
            self
        } else {
            other
        }
    }
}

impl PartialOrd for Timestamp {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Timestamp {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.diff(*other).cmp(&0)
    }
}

impl std::fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Ts({}ns)", self.0)
    }
}

impl std::fmt::Display for Timestamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 >= SECONDS {
            write!(f, "{:.6}s", self.0 as f64 / SECONDS as f64)
        } else if self.0 >= MICROS {
            write!(f, "{:.3}us", self.0 as f64 / MICROS as f64)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ordering() {
        let a = Timestamp::from_nanos(100);
        let b = Timestamp::from_nanos(200);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a, Timestamp::from_nanos(100));
        assert_eq!(b.since(a), 100);
        assert_eq!(a.since(b), 0);
    }

    #[test]
    fn wrap_around_ordering() {
        let a = Timestamp::from_raw(TIMESTAMP_MASK - 5);
        let b = a.wrapping_add(10); // wraps past zero
        assert!(a < b);
        assert_eq!(b.raw(), 4);
        assert_eq!(b.since(a), 10);
        assert_eq!(a.diff(b), -10);
    }

    #[test]
    fn diff_is_antisymmetric() {
        let a = Timestamp::from_nanos(1_000_000);
        let b = Timestamp::from_nanos(2_500_000);
        assert_eq!(a.diff(b), -b.diff(a));
    }

    #[test]
    fn min_max_respect_ring_order() {
        let a = Timestamp::from_raw(TIMESTAMP_MASK - 1);
        let b = a.wrapping_add(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn truncates_to_48_bits() {
        let t = Timestamp::from_raw(u64::MAX);
        assert_eq!(t.raw(), TIMESTAMP_MASK);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", Timestamp::from_nanos(500)), "500ns");
        assert_eq!(format!("{}", Timestamp::from_nanos(1_500)), "1.500us");
        assert_eq!(format!("{}", Timestamp::from_nanos(2_000_000_000)), "2.000000s");
    }
}
