//! Registry mapping processes to the hosts they run on.

use crate::ids::{HostId, ProcessId};

/// Where each process lives. Switches route 1Pipe packets by looking up the
/// destination process's host; the controller uses the same map to decide
/// which processes die with a host or rack (§5.2).
#[derive(Clone, Debug, Default)]
pub struct ProcessMap {
    host_of: Vec<HostId>,
    /// processes_on[host] = list of processes placed there.
    processes_on: Vec<Vec<ProcessId>>,
}

impl ProcessMap {
    /// An empty registry over `num_hosts` hosts.
    pub fn new(num_hosts: usize) -> Self {
        ProcessMap { host_of: Vec::new(), processes_on: vec![Vec::new(); num_hosts] }
    }

    /// Place `n` processes round-robin across all hosts (the paper's
    /// experimental setup: "each server hosts the same number of
    /// processes"). Returns the created process ids.
    pub fn place_round_robin(num_hosts: usize, n: usize) -> Self {
        let mut map = Self::new(num_hosts);
        for i in 0..n {
            map.add_process(HostId((i % num_hosts) as u32));
        }
        map
    }

    /// Register a new process on `host`; returns its id.
    pub fn add_process(&mut self, host: HostId) -> ProcessId {
        let id = ProcessId(self.host_of.len() as u32);
        self.host_of.push(host);
        self.processes_on[host.0 as usize].push(id);
        id
    }

    /// The host a process runs on.
    pub fn host_of(&self, p: ProcessId) -> Option<HostId> {
        self.host_of.get(p.0 as usize).copied()
    }

    /// Processes running on a host.
    pub fn processes_on(&self, h: HostId) -> &[ProcessId] {
        &self.processes_on[h.0 as usize]
    }

    /// Total number of processes.
    pub fn len(&self) -> usize {
        self.host_of.len()
    }

    /// True when no processes are registered.
    pub fn is_empty(&self) -> bool {
        self.host_of.is_empty()
    }

    /// Iterator over all process ids.
    pub fn all(&self) -> impl Iterator<Item = ProcessId> {
        (0..self.host_of.len() as u32).map(ProcessId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_placement() {
        let map = ProcessMap::place_round_robin(4, 10);
        assert_eq!(map.len(), 10);
        assert_eq!(map.host_of(ProcessId(0)), Some(HostId(0)));
        assert_eq!(map.host_of(ProcessId(5)), Some(HostId(1)));
        assert_eq!(map.processes_on(HostId(0)), &[ProcessId(0), ProcessId(4), ProcessId(8)]);
        assert_eq!(map.processes_on(HostId(3)), &[ProcessId(3), ProcessId(7)]);
    }

    #[test]
    fn unknown_process_is_none() {
        let map = ProcessMap::new(2);
        assert_eq!(map.host_of(ProcessId(0)), None);
    }

    #[test]
    fn all_iterates_everything() {
        let map = ProcessMap::place_round_robin(2, 5);
        assert_eq!(map.all().count(), 5);
    }
}
