//! The 1Pipe wire format.
//!
//! Paper §6.1: "A UD packet in 1Pipe adds 24 bytes of headers: 3 timestamps
//! including message, best-effort barrier, and commit barrier; PSN; an
//! opcode and a flag that marks end of message. A timestamp is a 48-bit
//! integer."
//!
//! [`PacketHeader`] is exactly that 24-byte header. [`Datagram`] wraps it
//! with endpoint addressing (source/destination process) for transports
//! that need self-contained packets (the UDP transport, pcap-style traces).

use crate::ids::ProcessId;
use crate::time::Timestamp;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Encoded size of [`PacketHeader`] in bytes (3×6 TS + 4 PSN + 1 op + 1 flags).
pub const HEADER_LEN: usize = 24;

/// Encoded size of the [`Datagram`] addressing prologue (src + dst + len).
pub const ADDR_LEN: usize = 4 + 4 + 4;

/// Packet type discriminator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum Opcode {
    /// Best-effort data packet; barriers are aggregated in-network.
    Data = 0,
    /// Reliable-service data packet (Prepare phase of 2PC). Switches do NOT
    /// aggregate the best-effort barrier for these (§5.1).
    DataReliable = 1,
    /// End-to-end acknowledgement of a reliable data packet.
    Ack = 2,
    /// Negative acknowledgement: the packet arrived below the receiver's
    /// delivered barrier and was dropped (§4.1).
    Nak = 3,
    /// Hop-by-hop beacon carrying barrier timestamps on idle links (§4.2).
    Beacon = 4,
    /// Commit message from a sender to its first-hop switch, carrying the
    /// commit barrier (§5.1, Figure 6).
    Commit = 5,
    /// Recall of a scattering whose delivery must be aborted (§5.2).
    Recall = 6,
    /// Acknowledgement of a [`Opcode::Recall`].
    RecallAck = 7,
    /// Controller-plane message; the payload carries the protocol body.
    Control = 8,
    /// Management-plane frame (controller ↔ host/switch): dead-link
    /// reports, failure announcements, resume orders, forwarded data.
    /// Never enters barrier aggregation or the total order.
    Mgmt = 9,
}

impl Opcode {
    /// Decode from the wire byte.
    pub fn from_u8(v: u8) -> Option<Opcode> {
        Some(match v {
            0 => Opcode::Data,
            1 => Opcode::DataReliable,
            2 => Opcode::Ack,
            3 => Opcode::Nak,
            4 => Opcode::Beacon,
            5 => Opcode::Commit,
            6 => Opcode::Recall,
            7 => Opcode::RecallAck,
            8 => Opcode::Control,
            9 => Opcode::Mgmt,
            _ => return None,
        })
    }

    /// True for packets that carry application payload and therefore occupy
    /// a position in the total order.
    pub fn is_data(self) -> bool {
        matches!(self, Opcode::Data | Opcode::DataReliable)
    }
}

/// Tiny local bitflags implementation so we do not pull in the `bitflags`
/// crate for one type.
macro_rules! bitflags_lite {
    (
        $(#[$meta:meta])*
        pub struct $name:ident: $ty:ty {
            $( $(#[$fmeta:meta])* const $flag:ident = $value:expr; )*
        }
    ) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
        pub struct $name($ty);

        impl $name {
            $( $(#[$fmeta])* pub const $flag: $name = $name($value); )*

            /// No flags set.
            pub const fn empty() -> Self { $name(0) }
            /// Raw bit pattern.
            pub const fn bits(self) -> $ty { self.0 }
            /// Reconstruct from raw bits (unknown bits preserved).
            pub const fn from_bits(bits: $ty) -> Self { $name(bits) }
            /// Whether every bit of `other` is set in `self`.
            pub const fn contains(self, other: $name) -> bool {
                (self.0 & other.0) == other.0
            }
            /// Set the bits of `other`.
            pub fn insert(&mut self, other: $name) { self.0 |= other.0; }
            /// Clear the bits of `other`.
            pub fn remove(&mut self, other: $name) { self.0 &= !other.0; }
            /// Union of the two flag sets.
            pub const fn union(self, other: $name) -> $name { $name(self.0 | other.0) }
        }

        impl std::ops::BitOr for $name {
            type Output = $name;
            fn bitor(self, rhs: $name) -> $name { self.union(rhs) }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "Flags({:#010b})", self.0)
            }
        }
    };
}

bitflags_lite! {
    /// Per-packet flag bits.
    pub struct Flags: u8 {
        /// Last fragment of a message (paper's "end of message" flag).
        const END_OF_MESSAGE = 0b0000_0001;
        /// ECN congestion-experienced mark (set by switches, echoed in ACKs).
        const ECN = 0b0000_0010;
        /// This packet is a retransmission.
        const RETRANSMIT = 0b0000_0100;
        /// The message belongs to a multi-destination scattering.
        const SCATTERING = 0b0000_1000;
    }
}

/// The 24-byte 1Pipe packet header (paper §6.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PacketHeader {
    /// Message timestamp, set by the sender, never modified in flight.
    pub msg_ts: Timestamp,
    /// Best-effort barrier timestamp, rewritten hop-by-hop per eq. (4.1).
    pub barrier: Timestamp,
    /// Commit barrier timestamp for the reliable service, also rewritten
    /// hop-by-hop.
    pub commit_barrier: Timestamp,
    /// Packet sequence number, used for loss detection and defragmentation.
    pub psn: u32,
    /// Packet type.
    pub opcode: Opcode,
    /// Flag bits.
    pub flags: Flags,
}

impl PacketHeader {
    /// A header with all timestamps equal to `ts` — how senders initialize
    /// data packets (§4.1: "the sender initializes both fields ... with the
    /// non-decreasing message timestamp").
    pub fn data(ts: Timestamp, psn: u32, flags: Flags) -> Self {
        PacketHeader {
            msg_ts: ts,
            barrier: ts,
            commit_barrier: Timestamp::ZERO,
            psn,
            opcode: Opcode::Data,
            flags,
        }
    }

    /// Serialize into `buf` (appends exactly [`HEADER_LEN`] bytes).
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.put_uint(self.msg_ts.raw(), 6);
        buf.put_uint(self.barrier.raw(), 6);
        buf.put_uint(self.commit_barrier.raw(), 6);
        buf.put_u32(self.psn);
        buf.put_u8(self.opcode as u8);
        buf.put_u8(self.flags.bits());
    }

    /// Deserialize from `buf`, consuming exactly [`HEADER_LEN`] bytes.
    pub fn decode(buf: &mut impl Buf) -> crate::Result<Self> {
        if buf.remaining() < HEADER_LEN {
            return Err(crate::Error::Truncated { needed: HEADER_LEN, got: buf.remaining() });
        }
        let msg_ts = Timestamp::from_raw(buf.get_uint(6));
        let barrier = Timestamp::from_raw(buf.get_uint(6));
        let commit_barrier = Timestamp::from_raw(buf.get_uint(6));
        let psn = buf.get_u32();
        let op = buf.get_u8();
        let opcode = Opcode::from_u8(op).ok_or(crate::Error::BadOpcode(op))?;
        let flags = Flags::from_bits(buf.get_u8());
        Ok(PacketHeader { msg_ts, barrier, commit_barrier, psn, opcode, flags })
    }
}

/// A self-contained packet: addressing + 1Pipe header + payload.
///
/// This is what travels through the simulator and over the UDP transport.
/// In the real system the addressing would live in the RDMA UD / IP headers.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Datagram {
    /// Sending process.
    pub src: ProcessId,
    /// Destination process.
    pub dst: ProcessId,
    /// The 24-byte 1Pipe header.
    pub header: PacketHeader,
    /// Application payload (empty for beacons/ACKs/control skeletons).
    pub payload: Bytes,
}

impl Datagram {
    /// Total encoded length in bytes.
    pub fn encoded_len(&self) -> usize {
        ADDR_LEN + HEADER_LEN + self.payload.len()
    }

    /// Serialize to a fresh buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        buf.put_u32(self.src.0);
        buf.put_u32(self.dst.0);
        buf.put_u32(self.payload.len() as u32);
        self.header.encode(&mut buf);
        buf.extend_from_slice(&self.payload);
        buf.freeze()
    }

    /// Deserialize from a buffer produced by [`encode`](Self::encode).
    pub fn decode(mut buf: Bytes) -> crate::Result<Self> {
        if buf.remaining() < ADDR_LEN + HEADER_LEN {
            return Err(crate::Error::Truncated {
                needed: ADDR_LEN + HEADER_LEN,
                got: buf.remaining(),
            });
        }
        let src = ProcessId(buf.get_u32());
        let dst = ProcessId(buf.get_u32());
        let len = buf.get_u32() as usize;
        let header = PacketHeader::decode(&mut buf)?;
        if buf.remaining() < len {
            return Err(crate::Error::Truncated { needed: len, got: buf.remaining() });
        }
        let payload = buf.split_to(len);
        Ok(Datagram { src, dst, header, payload })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> PacketHeader {
        PacketHeader {
            msg_ts: Timestamp::from_nanos(123_456_789),
            barrier: Timestamp::from_nanos(123_000_000),
            commit_barrier: Timestamp::from_nanos(122_000_000),
            psn: 0xDEAD_BEEF,
            opcode: Opcode::DataReliable,
            flags: Flags::END_OF_MESSAGE | Flags::SCATTERING,
        }
    }

    #[test]
    fn header_roundtrip() {
        let h = sample_header();
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), HEADER_LEN);
        let decoded = PacketHeader::decode(&mut buf.freeze()).unwrap();
        assert_eq!(decoded, h);
    }

    #[test]
    fn header_is_exactly_24_bytes() {
        // The paper's claim: 24 bytes of overhead per UD packet.
        let mut buf = BytesMut::new();
        sample_header().encode(&mut buf);
        assert_eq!(buf.len(), 24);
    }

    #[test]
    fn datagram_roundtrip() {
        let d = Datagram {
            src: ProcessId(7),
            dst: ProcessId(9),
            header: sample_header(),
            payload: Bytes::from_static(b"hello 1pipe"),
        };
        let encoded = d.encode();
        assert_eq!(encoded.len(), d.encoded_len());
        let decoded = Datagram::decode(encoded).unwrap();
        assert_eq!(decoded, d);
    }

    #[test]
    fn truncated_header_rejected() {
        let mut buf = BytesMut::new();
        sample_header().encode(&mut buf);
        let mut short = buf.freeze().slice(0..10);
        assert!(matches!(PacketHeader::decode(&mut short), Err(crate::Error::Truncated { .. })));
    }

    #[test]
    fn bad_opcode_rejected() {
        let mut buf = BytesMut::new();
        sample_header().encode(&mut buf);
        let mut bytes = buf.to_vec();
        bytes[22] = 0xFF; // opcode byte
        assert!(matches!(
            PacketHeader::decode(&mut Bytes::from(bytes)),
            Err(crate::Error::BadOpcode(0xFF))
        ));
    }

    #[test]
    fn flags_ops() {
        let mut f = Flags::empty();
        assert!(!f.contains(Flags::ECN));
        f.insert(Flags::ECN);
        f.insert(Flags::RETRANSMIT);
        assert!(f.contains(Flags::ECN | Flags::RETRANSMIT));
        f.remove(Flags::ECN);
        assert!(!f.contains(Flags::ECN));
        assert!(f.contains(Flags::RETRANSMIT));
    }

    #[test]
    fn opcode_roundtrip_all() {
        for v in 0u8..=9 {
            let op = Opcode::from_u8(v).unwrap();
            assert_eq!(op as u8, v);
        }
        assert!(Opcode::from_u8(10).is_none());
    }

    #[test]
    fn is_data_classification() {
        assert!(Opcode::Data.is_data());
        assert!(Opcode::DataReliable.is_data());
        assert!(!Opcode::Beacon.is_data());
        assert!(!Opcode::Ack.is_data());
        assert!(!Opcode::Commit.is_data());
    }
}
