//! The 1Pipe wire format.
//!
//! Paper §6.1: "A UD packet in 1Pipe adds 24 bytes of headers: 3 timestamps
//! including message, best-effort barrier, and commit barrier; PSN; an
//! opcode and a flag that marks end of message. A timestamp is a 48-bit
//! integer."
//!
//! [`PacketHeader`] is exactly that 24-byte header. [`Datagram`] wraps it
//! with endpoint addressing (source/destination process) for transports
//! that need self-contained packets (the UDP transport, pcap-style traces).

use crate::ids::ProcessId;
use crate::time::Timestamp;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Encoded size of [`PacketHeader`] in bytes (3×6 TS + 4 PSN + 1 op + 1 flags).
pub const HEADER_LEN: usize = 24;

/// Encoded size of the [`Datagram`] addressing prologue (src + dst + len).
pub const ADDR_LEN: usize = 4 + 4 + 4;

/// Packet type discriminator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum Opcode {
    /// Best-effort data packet; barriers are aggregated in-network.
    Data = 0,
    /// Reliable-service data packet (Prepare phase of 2PC). Switches do NOT
    /// aggregate the best-effort barrier for these (§5.1).
    DataReliable = 1,
    /// End-to-end acknowledgement of a reliable data packet.
    Ack = 2,
    /// Negative acknowledgement: the packet arrived below the receiver's
    /// delivered barrier and was dropped (§4.1).
    Nak = 3,
    /// Hop-by-hop beacon carrying barrier timestamps on idle links (§4.2).
    Beacon = 4,
    /// Commit message from a sender to its first-hop switch, carrying the
    /// commit barrier (§5.1, Figure 6).
    Commit = 5,
    /// Recall of a scattering whose delivery must be aborted (§5.2).
    Recall = 6,
    /// Acknowledgement of a [`Opcode::Recall`].
    RecallAck = 7,
    /// Controller-plane message; the payload carries the protocol body.
    Control = 8,
    /// Management-plane frame (controller ↔ host/switch): dead-link
    /// reports, failure announcements, resume orders, forwarded data.
    /// Never enters barrier aggregation or the total order.
    Mgmt = 9,
}

impl Opcode {
    /// Decode from the wire byte.
    pub fn from_u8(v: u8) -> Option<Opcode> {
        Some(match v {
            0 => Opcode::Data,
            1 => Opcode::DataReliable,
            2 => Opcode::Ack,
            3 => Opcode::Nak,
            4 => Opcode::Beacon,
            5 => Opcode::Commit,
            6 => Opcode::Recall,
            7 => Opcode::RecallAck,
            8 => Opcode::Control,
            9 => Opcode::Mgmt,
            _ => return None,
        })
    }

    /// True for packets that carry application payload and therefore occupy
    /// a position in the total order.
    pub fn is_data(self) -> bool {
        matches!(self, Opcode::Data | Opcode::DataReliable)
    }
}

/// Tiny local bitflags implementation so we do not pull in the `bitflags`
/// crate for one type.
macro_rules! bitflags_lite {
    (
        $(#[$meta:meta])*
        pub struct $name:ident: $ty:ty {
            $( $(#[$fmeta:meta])* const $flag:ident = $value:expr; )*
        }
    ) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
        pub struct $name($ty);

        impl $name {
            $( $(#[$fmeta])* pub const $flag: $name = $name($value); )*

            /// No flags set.
            pub const fn empty() -> Self { $name(0) }
            /// Raw bit pattern.
            pub const fn bits(self) -> $ty { self.0 }
            /// Reconstruct from raw bits (unknown bits preserved).
            pub const fn from_bits(bits: $ty) -> Self { $name(bits) }
            /// Whether every bit of `other` is set in `self`.
            pub const fn contains(self, other: $name) -> bool {
                (self.0 & other.0) == other.0
            }
            /// Set the bits of `other`.
            pub fn insert(&mut self, other: $name) { self.0 |= other.0; }
            /// Clear the bits of `other`.
            pub fn remove(&mut self, other: $name) { self.0 &= !other.0; }
            /// Union of the two flag sets.
            pub const fn union(self, other: $name) -> $name { $name(self.0 | other.0) }
        }

        impl std::ops::BitOr for $name {
            type Output = $name;
            fn bitor(self, rhs: $name) -> $name { self.union(rhs) }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "Flags({:#010b})", self.0)
            }
        }
    };
}

bitflags_lite! {
    /// Per-packet flag bits.
    pub struct Flags: u8 {
        /// Last fragment of a message (paper's "end of message" flag).
        const END_OF_MESSAGE = 0b0000_0001;
        /// ECN congestion-experienced mark (set by switches, echoed in ACKs).
        const ECN = 0b0000_0010;
        /// This packet is a retransmission.
        const RETRANSMIT = 0b0000_0100;
        /// The message belongs to a multi-destination scattering.
        const SCATTERING = 0b0000_1000;
    }
}

/// The 24-byte 1Pipe packet header (paper §6.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PacketHeader {
    /// Message timestamp, set by the sender, never modified in flight.
    pub msg_ts: Timestamp,
    /// Best-effort barrier timestamp, rewritten hop-by-hop per eq. (4.1).
    pub barrier: Timestamp,
    /// Commit barrier timestamp for the reliable service, also rewritten
    /// hop-by-hop.
    pub commit_barrier: Timestamp,
    /// Packet sequence number, used for loss detection and defragmentation.
    pub psn: u32,
    /// Packet type.
    pub opcode: Opcode,
    /// Flag bits.
    pub flags: Flags,
}

impl PacketHeader {
    /// A header with all timestamps equal to `ts` — how senders initialize
    /// data packets (§4.1: "the sender initializes both fields ... with the
    /// non-decreasing message timestamp").
    pub fn data(ts: Timestamp, psn: u32, flags: Flags) -> Self {
        PacketHeader {
            msg_ts: ts,
            barrier: ts,
            commit_barrier: Timestamp::ZERO,
            psn,
            opcode: Opcode::Data,
            flags,
        }
    }

    /// Serialize into `buf` (appends exactly [`HEADER_LEN`] bytes).
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.put_uint(self.msg_ts.raw(), 6);
        buf.put_uint(self.barrier.raw(), 6);
        buf.put_uint(self.commit_barrier.raw(), 6);
        buf.put_u32(self.psn);
        buf.put_u8(self.opcode as u8);
        buf.put_u8(self.flags.bits());
    }

    /// Deserialize from `buf`, consuming exactly [`HEADER_LEN`] bytes.
    pub fn decode(buf: &mut impl Buf) -> crate::Result<Self> {
        if buf.remaining() < HEADER_LEN {
            return Err(crate::Error::Truncated { needed: HEADER_LEN, got: buf.remaining() });
        }
        let msg_ts = Timestamp::from_raw(buf.get_uint(6));
        let barrier = Timestamp::from_raw(buf.get_uint(6));
        let commit_barrier = Timestamp::from_raw(buf.get_uint(6));
        let psn = buf.get_u32();
        let op = buf.get_u8();
        let opcode = Opcode::from_u8(op).ok_or(crate::Error::BadOpcode(op))?;
        let flags = Flags::from_bits(buf.get_u8());
        Ok(PacketHeader { msg_ts, barrier, commit_barrier, psn, opcode, flags })
    }
}

/// A self-contained packet: addressing + 1Pipe header + payload.
///
/// This is what travels through the simulator and over the UDP transport.
/// In the real system the addressing would live in the RDMA UD / IP headers.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Datagram {
    /// Sending process.
    pub src: ProcessId,
    /// Destination process.
    pub dst: ProcessId,
    /// The 24-byte 1Pipe header.
    pub header: PacketHeader,
    /// Application payload (empty for beacons/ACKs/control skeletons).
    pub payload: Bytes,
}

impl Datagram {
    /// Total encoded length in bytes.
    pub fn encoded_len(&self) -> usize {
        ADDR_LEN + HEADER_LEN + self.payload.len()
    }

    /// Serialize into `buf` without allocating (appends exactly
    /// [`encoded_len`](Self::encoded_len) bytes). Transports reuse one
    /// scratch buffer across sends instead of allocating per datagram.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.reserve(self.encoded_len());
        buf.put_u32(self.src.0);
        buf.put_u32(self.dst.0);
        buf.put_u32(self.payload.len() as u32);
        self.header.encode(buf);
        buf.extend_from_slice(&self.payload);
    }

    /// Serialize to a fresh buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Deserialize from a buffer produced by [`encode`](Self::encode).
    ///
    /// Zero-copy: the payload is a sub-view sharing `buf`'s storage (for
    /// pooled receive buffers this means no per-packet heap copy). Empty
    /// payloads return a detached [`Bytes::new`] so beacons and ACKs never
    /// pin a pool chunk.
    pub fn decode(mut buf: Bytes) -> crate::Result<Self> {
        if buf.remaining() < ADDR_LEN + HEADER_LEN {
            return Err(crate::Error::Truncated {
                needed: ADDR_LEN + HEADER_LEN,
                got: buf.remaining(),
            });
        }
        let src = ProcessId(buf.get_u32());
        let dst = ProcessId(buf.get_u32());
        let len = buf.get_u32() as usize;
        let header = PacketHeader::decode(&mut buf)?;
        if buf.remaining() < len {
            return Err(crate::Error::Truncated { needed: len, got: buf.remaining() });
        }
        let payload = if len == 0 { Bytes::new() } else { buf.split_to(len) };
        Ok(Datagram { src, dst, header, payload })
    }
}

/// First byte of a batch frame. Distinguishable from a legacy bare
/// [`Datagram`] because a bare encoding starts with the high byte of the
/// source [`ProcessId`], and process ids stay far below `0xB100_0000`.
pub const BATCH_MAGIC: u8 = 0xB1;

/// Batch frame format version carried in the second byte.
pub const BATCH_VERSION: u8 = 1;

/// Fixed bytes before the first datagram of a batch frame
/// (magic + version + u16 count).
pub const BATCH_HEADER_LEN: usize = 4;

/// Per-datagram framing overhead inside a batch (u32 length prefix).
pub const BATCH_ENTRY_OVERHEAD: usize = 4;

/// Incremental encoder for a multi-datagram batch frame:
///
/// ```text
/// [magic 0xB1][version u8][count u16] then count ×: [len u32][Datagram]
/// ```
///
/// Push datagrams, then call [`finish`](Self::finish) to patch the count.
/// One UDP packet carries the whole frame, so beacons/ACKs/mgmt piggyback
/// on data and N datagrams cost one syscall.
pub struct BatchEncoder<'a> {
    buf: &'a mut BytesMut,
    base: usize,
    count: u16,
}

impl<'a> BatchEncoder<'a> {
    /// Start a frame at the current end of `buf`.
    pub fn new(buf: &'a mut BytesMut) -> Self {
        let base = buf.len();
        buf.put_u8(BATCH_MAGIC);
        buf.put_u8(BATCH_VERSION);
        buf.put_u16(0); // count, patched by finish()
        BatchEncoder { buf, base, count: 0 }
    }

    /// Append one datagram with its length prefix.
    ///
    /// # Panics
    /// If the frame already holds `u16::MAX` datagrams; callers split
    /// frames long before that (see [`Self::is_full`]).
    pub fn push(&mut self, d: &Datagram) {
        assert!(self.count < u16::MAX, "batch frame datagram count overflow");
        self.buf.put_u32(d.encoded_len() as u32);
        d.encode_into(self.buf);
        self.count += 1;
    }

    /// Number of datagrams pushed so far.
    pub fn count(&self) -> u16 {
        self.count
    }

    /// Encoded frame size so far, in bytes.
    pub fn frame_len(&self) -> usize {
        self.buf.len() - self.base
    }

    /// True once no further datagram may be pushed.
    pub fn is_full(&self) -> bool {
        self.count == u16::MAX
    }

    /// Patch the datagram count into the header and return it.
    pub fn finish(self) -> u16 {
        let c = self.count.to_be_bytes();
        self.buf[self.base + 2] = c[0];
        self.buf[self.base + 3] = c[1];
        self.count
    }
}

/// Encode `datagrams` as a single batch frame appended to `buf`.
pub fn encode_batch_into(datagrams: &[Datagram], buf: &mut BytesMut) {
    let mut enc = BatchEncoder::new(buf);
    for d in datagrams {
        enc.push(d);
    }
    enc.finish();
}

/// Decode one received UDP frame, which is either a batch frame or a
/// legacy bare [`Datagram`]. Yields one `Result` per framed datagram.
///
/// Framing is trusted over content: a corrupt *inner* datagram (bad
/// opcode, truncated header) yields an `Err` for that entry but iteration
/// continues at the next length prefix, so one bad packet never mis-frames
/// the rest of the batch. A corrupt length prefix (running past the frame)
/// poisons the remainder of that frame only.
pub fn decode_frame(frame: Bytes) -> FrameIter {
    if frame.first() == Some(&BATCH_MAGIC) {
        if frame.len() < BATCH_HEADER_LEN {
            return FrameIter::Poisoned(Some(crate::Error::Truncated {
                needed: BATCH_HEADER_LEN,
                got: frame.len(),
            }));
        }
        let mut buf = frame;
        buf.advance(1);
        let version = buf.get_u8();
        if version != BATCH_VERSION {
            return FrameIter::Poisoned(Some(crate::Error::BadFrameVersion(version)));
        }
        let remaining = buf.get_u16();
        FrameIter::Batch { buf, remaining, dead: false }
    } else {
        FrameIter::Legacy(Some(frame))
    }
}

/// Iterator over the datagrams of one frame; see [`decode_frame`].
pub enum FrameIter {
    /// A pre-batching frame holding exactly one bare datagram.
    Legacy(Option<Bytes>),
    /// A batch frame; `remaining` entries left, `dead` once framing broke.
    Batch {
        /// Unconsumed frame bytes.
        buf: Bytes,
        /// Entries the header still promises.
        remaining: u16,
        /// Set when a length prefix overran the frame.
        dead: bool,
    },
    /// A frame whose batch header itself was malformed: yields the error once.
    Poisoned(Option<crate::Error>),
}

impl Iterator for FrameIter {
    type Item = crate::Result<Datagram>;

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            FrameIter::Legacy(slot) => slot.take().map(Datagram::decode),
            FrameIter::Poisoned(slot) => slot.take().map(Err),
            FrameIter::Batch { buf, remaining, dead } => {
                if *dead || *remaining == 0 {
                    return None;
                }
                *remaining -= 1;
                if buf.remaining() < BATCH_ENTRY_OVERHEAD {
                    *dead = true;
                    return Some(Err(crate::Error::Truncated {
                        needed: BATCH_ENTRY_OVERHEAD,
                        got: buf.remaining(),
                    }));
                }
                let len = buf.get_u32() as usize;
                if buf.remaining() < len {
                    *dead = true;
                    return Some(Err(crate::Error::Truncated {
                        needed: len,
                        got: buf.remaining(),
                    }));
                }
                // Framing survives a corrupt entry: skip by length, decode
                // the slice independently.
                Some(Datagram::decode(buf.split_to(len)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> PacketHeader {
        PacketHeader {
            msg_ts: Timestamp::from_nanos(123_456_789),
            barrier: Timestamp::from_nanos(123_000_000),
            commit_barrier: Timestamp::from_nanos(122_000_000),
            psn: 0xDEAD_BEEF,
            opcode: Opcode::DataReliable,
            flags: Flags::END_OF_MESSAGE | Flags::SCATTERING,
        }
    }

    #[test]
    fn header_roundtrip() {
        let h = sample_header();
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), HEADER_LEN);
        let decoded = PacketHeader::decode(&mut buf.freeze()).unwrap();
        assert_eq!(decoded, h);
    }

    #[test]
    fn header_is_exactly_24_bytes() {
        // The paper's claim: 24 bytes of overhead per UD packet.
        let mut buf = BytesMut::new();
        sample_header().encode(&mut buf);
        assert_eq!(buf.len(), 24);
    }

    #[test]
    fn datagram_roundtrip() {
        let d = Datagram {
            src: ProcessId(7),
            dst: ProcessId(9),
            header: sample_header(),
            payload: Bytes::from_static(b"hello 1pipe"),
        };
        let encoded = d.encode();
        assert_eq!(encoded.len(), d.encoded_len());
        let decoded = Datagram::decode(encoded).unwrap();
        assert_eq!(decoded, d);
    }

    #[test]
    fn truncated_header_rejected() {
        let mut buf = BytesMut::new();
        sample_header().encode(&mut buf);
        let mut short = buf.freeze().slice(0..10);
        assert!(matches!(PacketHeader::decode(&mut short), Err(crate::Error::Truncated { .. })));
    }

    #[test]
    fn bad_opcode_rejected() {
        let mut buf = BytesMut::new();
        sample_header().encode(&mut buf);
        let mut bytes = buf.to_vec();
        bytes[22] = 0xFF; // opcode byte
        assert!(matches!(
            PacketHeader::decode(&mut Bytes::from(bytes)),
            Err(crate::Error::BadOpcode(0xFF))
        ));
    }

    #[test]
    fn flags_ops() {
        let mut f = Flags::empty();
        assert!(!f.contains(Flags::ECN));
        f.insert(Flags::ECN);
        f.insert(Flags::RETRANSMIT);
        assert!(f.contains(Flags::ECN | Flags::RETRANSMIT));
        f.remove(Flags::ECN);
        assert!(!f.contains(Flags::ECN));
        assert!(f.contains(Flags::RETRANSMIT));
    }

    #[test]
    fn opcode_roundtrip_all() {
        for v in 0u8..=9 {
            let op = Opcode::from_u8(v).unwrap();
            assert_eq!(op as u8, v);
        }
        assert!(Opcode::from_u8(10).is_none());
    }

    #[test]
    fn is_data_classification() {
        assert!(Opcode::Data.is_data());
        assert!(Opcode::DataReliable.is_data());
        assert!(!Opcode::Beacon.is_data());
        assert!(!Opcode::Ack.is_data());
        assert!(!Opcode::Commit.is_data());
    }

    fn sample_datagram(src: u32, body: &[u8]) -> Datagram {
        Datagram {
            src: ProcessId(src),
            dst: ProcessId(src + 1),
            header: sample_header(),
            payload: Bytes::copy_from_slice(body),
        }
    }

    #[test]
    fn encode_into_matches_encode() {
        let d = sample_datagram(3, b"payload bytes");
        let mut buf = BytesMut::new();
        buf.extend_from_slice(b"prefix"); // appends after existing content
        d.encode_into(&mut buf);
        assert_eq!(&buf[6..], &d.encode()[..]);
    }

    #[test]
    fn decode_payload_is_zero_copy_slice() {
        let d = sample_datagram(1, b"shared storage");
        let encoded = d.encode();
        let decoded = Datagram::decode(encoded.clone()).unwrap();
        // The frame and the payload share one allocation: while the payload
        // handle lives, the frame cannot be reclaimed...
        assert!(encoded.clone().try_into_mut().is_err());
        // ...and once the decoded datagram drops, it can.
        drop(decoded);
        assert!(encoded.try_into_mut().is_ok());
    }

    #[test]
    fn empty_payload_does_not_pin_frame() {
        let d = sample_datagram(1, b"");
        let encoded = d.encode();
        let decoded = Datagram::decode(encoded.clone()).unwrap();
        assert!(decoded.payload.is_empty());
        // Beacon-like packets must not hold the receive buffer alive.
        assert!(encoded.try_into_mut().is_ok());
        drop(decoded);
    }

    #[test]
    fn batch_roundtrip() {
        let ds =
            vec![sample_datagram(1, b"first"), sample_datagram(2, b""), sample_datagram(3, b"x")];
        let mut buf = BytesMut::new();
        encode_batch_into(&ds, &mut buf);
        assert_eq!(
            buf.len(),
            BATCH_HEADER_LEN
                + ds.iter().map(|d| BATCH_ENTRY_OVERHEAD + d.encoded_len()).sum::<usize>()
        );
        let out: Vec<Datagram> =
            decode_frame(buf.freeze()).collect::<crate::Result<Vec<_>>>().unwrap();
        assert_eq!(out, ds);
    }

    #[test]
    fn empty_batch_roundtrip() {
        let mut buf = BytesMut::new();
        encode_batch_into(&[], &mut buf);
        assert_eq!(decode_frame(buf.freeze()).count(), 0);
    }

    #[test]
    fn legacy_frame_still_decodes() {
        let d = sample_datagram(4, b"old format");
        let out: Vec<Datagram> =
            decode_frame(d.encode()).collect::<crate::Result<Vec<_>>>().unwrap();
        assert_eq!(out, vec![d]);
    }

    #[test]
    fn corrupt_inner_datagram_does_not_misframe_batch() {
        let ds = vec![
            sample_datagram(1, b"ok1"),
            sample_datagram(2, b"bad"),
            sample_datagram(3, b"ok2"),
        ];
        let mut buf = BytesMut::new();
        encode_batch_into(&ds, &mut buf);
        // Corrupt the middle datagram's opcode byte (inside its slice).
        let mid_off = BATCH_HEADER_LEN
            + BATCH_ENTRY_OVERHEAD
            + ds[0].encoded_len()
            + BATCH_ENTRY_OVERHEAD
            + ADDR_LEN
            + 22; // opcode byte within the header
        buf[mid_off] = 0xFF;
        let items: Vec<_> = decode_frame(buf.freeze()).collect();
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].as_ref().unwrap(), &ds[0]);
        assert!(matches!(items[1], Err(crate::Error::BadOpcode(0xFF))));
        // The third datagram survives the corrupt second one.
        assert_eq!(items[2].as_ref().unwrap(), &ds[2]);
    }

    #[test]
    fn truncated_batch_poisons_remainder_without_panicking() {
        let ds = vec![sample_datagram(1, b"aaaa"), sample_datagram(2, b"bbbb")];
        let mut buf = BytesMut::new();
        encode_batch_into(&ds, &mut buf);
        let full = buf.freeze();
        for cut in 0..full.len() {
            let items: Vec<_> = decode_frame(full.slice(0..cut)).collect();
            // Never more entries than promised; errors allowed, panics not.
            assert!(items.len() <= 2);
        }
    }

    #[test]
    fn bad_batch_version_rejected() {
        let mut buf = BytesMut::new();
        encode_batch_into(&[sample_datagram(1, b"v")], &mut buf);
        buf[1] = 9; // version byte
        let items: Vec<_> = decode_frame(buf.freeze()).collect();
        assert_eq!(items.len(), 1);
        assert!(matches!(items[0], Err(crate::Error::BadFrameVersion(9))));
    }
}
