//! Identifiers for hosts, processes, network nodes and links.

/// Identifies a physical server in the data center.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub u32);

impl std::fmt::Debug for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// Identifies an application process. Processes are the endpoints of 1Pipe:
/// every send and delivery happens between a pair of processes.
///
/// The flat `u32` is globally unique; the host a process runs on is tracked
/// by the process registry (simulator or controller).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub u32);

impl std::fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A node in the routing graph: a host NIC or a (logical) switch.
///
/// Following the paper's Figure 3, each physical switch is split into an
/// *uplink* and a *downlink* logical switch so that the routing graph is a
/// DAG; the simulator allocates distinct `NodeId`s for the two halves.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl std::fmt::Debug for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A directed link in the routing graph, identified by its endpoints.
///
/// Links are the unit of the FIFO property and of barrier bookkeeping: each
/// switch keeps one barrier register per *input* link (paper §4.1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId {
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
}

impl LinkId {
    /// Construct a directed link id.
    pub fn new(from: NodeId, to: NodeId) -> Self {
        LinkId { from, to }
    }

    /// The reverse direction of this link.
    pub fn reversed(self) -> Self {
        LinkId { from: self.to, to: self.from }
    }
}

impl std::fmt::Debug for LinkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}->{:?}", self.from, self.to)
    }
}

/// Identifies one scattering (a group of messages sharing one position in
/// the total order) within a sender: `(sender, seq)` is globally unique.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ScatteringId {
    /// The process that issued the scattering.
    pub sender: ProcessId,
    /// Sender-local sequence number of the scattering.
    pub seq: u64,
}

impl std::fmt::Debug for ScatteringId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sc({:?},{})", self.sender, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_reversal() {
        let l = LinkId::new(NodeId(1), NodeId(2));
        assert_eq!(l.reversed(), LinkId::new(NodeId(2), NodeId(1)));
        assert_eq!(l.reversed().reversed(), l);
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", HostId(3)), "h3");
        assert_eq!(format!("{:?}", ProcessId(7)), "p7");
        assert_eq!(format!("{:?}", LinkId::new(NodeId(1), NodeId(2))), "n1->n2");
    }

    #[test]
    fn scattering_id_ordering_is_by_sender_then_seq() {
        let a = ScatteringId { sender: ProcessId(1), seq: 9 };
        let b = ScatteringId { sender: ProcessId(2), seq: 0 };
        assert!(a < b);
    }
}
