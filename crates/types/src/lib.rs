//! Common types for the 1Pipe reproduction: identifiers, 48-bit wrapping
//! timestamps (with PAWS-style comparison), the 24-byte 1Pipe packet header,
//! message and scattering types, and shared error definitions.
//!
//! Everything in this crate is transport- and simulator-agnostic: the
//! endpoint library ([`onepipe-core`]), the network simulator
//! ([`onepipe-netsim`]) and the real UDP transport ([`onepipe-udp`]) all
//! speak these types.
//!
//! [`onepipe-core`]: ../onepipe_core/index.html
//! [`onepipe-netsim`]: ../onepipe_netsim/index.html
//! [`onepipe-udp`]: ../onepipe_udp/index.html

#![warn(missing_docs)]

pub mod error;
pub mod ids;
pub mod message;
pub mod process_map;
pub mod time;
pub mod wire;

pub use error::{Error, Result};
pub use ids::{HostId, LinkId, NodeId, ProcessId, ScatteringId};
pub use message::{Delivered, Message, OrderKey, Scattering};
pub use process_map::ProcessMap;
pub use time::{Duration, Timestamp};
pub use wire::{Datagram, Flags, Opcode, PacketHeader, HEADER_LEN};
