//! Property tests for the packet codec and the batch frame (§6.1).
//!
//! The decoder sits on the untrusted side of a UDP socket: whatever
//! bytes arrive, it must either produce a datagram identical to what
//! `encode` would have emitted or reject with an error — never panic,
//! and never let a corrupt batch *entry* mis-frame the entries after it
//! (the length prefix is the framing authority, not the entry body).

use bytes::{Bytes, BytesMut};
use onepipe_types::ids::ProcessId;
use onepipe_types::time::Timestamp;
use onepipe_types::wire::{
    decode_frame, encode_batch_into, Datagram, Flags, Opcode, PacketHeader, BATCH_HEADER_LEN,
    BATCH_MAGIC, BATCH_VERSION,
};
use proptest::prelude::*;

/// Raw field draw for one datagram: (src, dst, msg_ts, psn, opcode,
/// flags, payload_len, payload_seed). The shim's tuple strategies cap at
/// eight elements, so barriers derive from `msg_ts` rotations and the
/// payload expands deterministically from the seed.
type DgramSeed = (u32, u32, u64, u32, u8, u8, usize, u64);

fn seed_strategy() -> (
    impl Strategy<Value = u32>,
    impl Strategy<Value = u32>,
    impl Strategy<Value = u64>,
    impl Strategy<Value = u32>,
    impl Strategy<Value = u8>,
    impl Strategy<Value = u8>,
    impl Strategy<Value = usize>,
    impl Strategy<Value = u64>,
) {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u64>(),
        any::<u32>(),
        0u8..10,
        0u8..16,
        0usize..200,
        any::<u64>(),
    )
}

fn mk_datagram(seed: &DgramSeed) -> Datagram {
    let &(src, dst, msg_ts, psn, op, flags, paylen, payseed) = seed;
    let mut payload = Vec::with_capacity(paylen);
    let mut s = payseed | 1;
    for _ in 0..paylen {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        payload.push((s >> 56) as u8);
    }
    Datagram {
        src: ProcessId(src),
        dst: ProcessId(dst),
        header: PacketHeader {
            msg_ts: Timestamp::from_raw(msg_ts),
            barrier: Timestamp::from_raw(msg_ts.rotate_left(17)),
            commit_barrier: Timestamp::from_raw(msg_ts.rotate_left(33)),
            psn,
            opcode: Opcode::from_u8(op).unwrap(),
            flags: Flags::from_bits(flags),
        },
        payload: Bytes::from(payload),
    }
}

proptest! {
    /// encode -> decode is the identity, for both encode paths.
    #[test]
    fn datagram_roundtrip(seed in seed_strategy()) {
        let d = mk_datagram(&seed);
        let via_encode = Datagram::decode(d.encode()).expect("decodes");
        prop_assert_eq!(&via_encode, &d);
        let mut buf = BytesMut::new();
        d.encode_into(&mut buf);
        prop_assert_eq!(buf.len(), d.encoded_len());
        let via_into = Datagram::decode(buf.freeze()).expect("decodes");
        prop_assert_eq!(&via_into, &d);
    }

    /// A batch of datagrams survives framing: same count, same contents,
    /// same order.
    #[test]
    fn batch_roundtrip(seeds in proptest::collection::vec(seed_strategy(), 1..12)) {
        let ds: Vec<Datagram> = seeds.iter().map(mk_datagram).collect();
        let mut buf = BytesMut::new();
        encode_batch_into(&ds, &mut buf);
        let decoded: Vec<Datagram> = decode_frame(buf.freeze())
            .collect::<Result<Vec<_>, _>>()
            .expect("whole batch decodes");
        prop_assert_eq!(decoded, ds);
    }

    /// Arbitrary bytes never panic the frame decoder — they decode or
    /// they error, and the iterator always terminates.
    #[test]
    fn random_bytes_never_panic(raw in proptest::collection::vec(any::<u8>(), 0..600)) {
        for item in decode_frame(Bytes::from(raw)).take(10_000) {
            let _ = item;
        }
    }

    /// Truncating a valid batch frame anywhere never panics, and every
    /// entry that does come out intact is one of the originals, in order.
    #[test]
    fn truncation_never_panics_or_invents(
        seeds in proptest::collection::vec(seed_strategy(), 1..8),
        cut_pm in 0usize..1001,
    ) {
        let ds: Vec<Datagram> = seeds.iter().map(mk_datagram).collect();
        let mut buf = BytesMut::new();
        encode_batch_into(&ds, &mut buf);
        let full = buf.freeze();
        let cut = full.len() * cut_pm / 1000;
        let mut next = 0usize;
        // Errors are fine (truncation must surface, not panic), so only
        // the successfully decoded entries are checked.
        for d in decode_frame(full.slice(0..cut)).flatten() {
            prop_assert!(next < ds.len(), "decoded more entries than were encoded");
            prop_assert_eq!(&d, &ds[next], "decoded entry {} differs", next);
            next += 1;
        }
        prop_assert!(next <= ds.len());
    }

    /// Corrupting bytes *inside one entry's body* must not mis-frame the
    /// entries after it: the length prefix is the framing authority, so
    /// every later entry still decodes in position.
    #[test]
    fn corrupt_entry_body_does_not_misframe_neighbours(
        seeds in proptest::collection::vec(seed_strategy(), 3..8),
        victim_off in 0usize..36,
        xor in 1u8..=255u8,
    ) {
        let ds: Vec<Datagram> = seeds.iter().map(mk_datagram).collect();
        let mut buf = BytesMut::new();
        encode_batch_into(&ds, &mut buf);
        let mut raw = buf.to_vec();
        // Flip a byte inside the first entry's body (after its 4-byte
        // length prefix): the 12-byte src/dst/len block plus the 24-byte
        // packet header — 36 bytes that decode but are not framing.
        let at = BATCH_HEADER_LEN + 4 + victim_off;
        raw[at] ^= xor;
        let results: Vec<_> = decode_frame(Bytes::from(raw)).collect();
        prop_assert_eq!(results.len(), ds.len(), "entry count preserved");
        // Entry 0 may decode to garbage (if the flipped bits still form a
        // valid header) or error — but entries 1.. must be byte-identical
        // survivors, never shifted.
        for (i, item) in results.iter().enumerate().skip(1) {
            match item {
                Ok(d) => prop_assert_eq!(d, &ds[i], "entry {} mis-framed", i),
                Err(e) => prop_assert!(false, "entry {} should survive: {e:?}", i),
            }
        }
    }

    /// Unknown batch frame versions are rejected as an error, not misread
    /// as datagram bytes.
    #[test]
    fn unknown_frame_version_rejected(
        vraw in any::<u8>(),
        tail in proptest::collection::vec(any::<u8>(), 2..100),
    ) {
        let version = if vraw == BATCH_VERSION { 0 } else { vraw };
        let mut raw = vec![BATCH_MAGIC, version];
        raw.extend_from_slice(&tail);
        let items: Vec<_> = decode_frame(Bytes::from(raw)).collect();
        prop_assert_eq!(items.len(), 1);
        prop_assert!(items[0].is_err(), "bad version must be an error");
    }

    /// Legacy bare datagrams (no batch header) still decode through
    /// decode_frame, as long as the source pid stays clear of the magic
    /// byte — which real ProcessIds (< 0xB100_0000) always do.
    #[test]
    fn legacy_bare_datagram_still_decodes(seed in seed_strategy()) {
        let mut d = mk_datagram(&seed);
        d.src = ProcessId(d.src.0 & 0x00FF_FFFF); // high byte 0: never 0xB1
        let items: Vec<_> = decode_frame(d.encode()).collect();
        prop_assert_eq!(items.len(), 1);
        prop_assert_eq!(items[0].as_ref().unwrap(), &d);
    }
}
