//! Minimal API-compatible stand-in for the [`rand`] crate (0.9 surface).
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! just what it uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::random_range` over integer and float ranges. The generator is
//! SplitMix64 — deterministic, fast, and plenty for simulation seeding.
//! Streams will differ from the real `rand`, which is fine: all consumers
//! seed explicitly and only need reproducibility within this workspace.
//!
//! [`rand`]: https://docs.rs/rand

/// Core RNG: produce raw 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit output.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build an RNG whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type usable as the argument of [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                // 53 random mantissa bits -> uniform in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let v = self.start as f64 + unit * (self.end as f64 - self.start as f64);
                // Guard against rounding up to the exclusive bound.
                if v >= self.end as f64 {
                    self.start
                } else {
                    v as $t
                }
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start() as f64, *self.end() as f64);
                assert!(lo <= hi, "empty range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                (lo + unit * (hi - lo)) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// High-level convenience methods, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// A coin flip with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random_range(0.0..1.0f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele et al.), public domain reference constants.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..u64::MAX), b.random_range(0..u64::MAX));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = r.random_range(5..17u32);
            assert!((5..17).contains(&v));
            let w = r.random_range(1..=3usize);
            assert!((1..=3).contains(&w));
            let f = r.random_range(0.0..1.0f64);
            assert!((0.0..1.0).contains(&f));
            let n = r.random_range(-10.0..10.0f64);
            assert!((-10.0..10.0).contains(&n));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random_range(0..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random_range(0..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
