//! Minimal API-compatible stand-in for the [`parking_lot`] crate.
//!
//! The build environment cannot reach crates.io; the workspace only needs
//! a `Mutex` with `const fn new` and a non-poisoning `lock()`. Backed by
//! `std::sync::Mutex`, with poison errors unwrapped into the inner guard
//! (matching parking_lot's no-poisoning behavior).
//!
//! [`parking_lot`]: https://docs.rs/parking_lot

use std::sync::Mutex as StdMutex;
use std::sync::MutexGuard as StdMutexGuard;

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

/// RAII guard; derefs to the protected value.
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex (usable in statics).
    pub const fn new(value: T) -> Self {
        Mutex { inner: StdMutex::new(value) }
    }

    /// Acquire the lock, ignoring poisoning from panicked holders.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire the lock if free.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    static GLOBAL: Mutex<u32> = Mutex::new(5);

    #[test]
    fn const_static_lock() {
        let mut g = GLOBAL.lock();
        *g += 1;
        assert!(*g >= 6);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
