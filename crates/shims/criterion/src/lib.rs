//! Minimal API-compatible stand-in for the [`criterion`] crate.
//!
//! The build environment cannot reach crates.io, so this provides just
//! enough surface for the workspace's benches to compile and run: each
//! `bench_function` / `bench_with_input` runs a short calibrated timing
//! loop and prints mean ns/iter. No statistics, plots, or baselines —
//! use the real criterion locally for serious measurements.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Register and immediately run a single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(name);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), _c: self }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.0));
        self
    }

    /// Finish the group (no-op; parity with the real API).
    pub fn finish(self) {}
}

/// Identifies one parameter point of a benchmark group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Use the parameter's `Display` form as the id.
    pub fn from_parameter<P: std::fmt::Display>(p: P) -> Self {
        BenchmarkId(p.to_string())
    }

    /// Function-plus-parameter id.
    pub fn new<P: std::fmt::Display>(function: &str, p: P) -> Self {
        BenchmarkId(format!("{function}/{p}"))
    }
}

/// Runs the measured closure in a timed loop.
#[derive(Default)]
pub struct Bencher {
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Time `routine`, auto-scaling the iteration count to ~50ms.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up + calibration: find an iteration count that runs long
        // enough for the timer to resolve.
        let mut n: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(10) || n >= 1 << 24 {
                self.mean_ns = dt.as_nanos() as f64 / n as f64;
                self.iters = n;
                return;
            }
            n = n.saturating_mul(4);
        }
    }

    fn report(&self, name: &str) {
        println!("{name:<44} {:>12.1} ns/iter ({} iters)", self.mean_ns, self.iters);
    }
}

/// Collect benchmark functions into a runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($f:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $f(&mut c); )+
        }
    };
}

/// Entry point running every group, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
