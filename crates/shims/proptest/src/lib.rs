//! Minimal API-compatible stand-in for the [`proptest`] crate.
//!
//! The build environment cannot reach crates.io, so this provides the
//! slice of proptest the workspace tests use: the `proptest!` macro with
//! `name(arg in strategy, ...)` signatures, range / tuple / `any` /
//! `collection::vec` strategies, and `prop_assert*`. Each property runs a
//! fixed number of deterministically seeded cases. There is no shrinking:
//! a failing case panics with the seed and case index so it can be
//! reproduced by rerunning the (deterministic) test.
//!
//! [`proptest`]: https://docs.rs/proptest

/// Number of cases each property runs.
pub const CASES: u32 = 64;

/// Deterministic RNG feeding strategy generation (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Fixed-seed RNG so failures reproduce across runs.
    pub fn deterministic(salt: u64) -> Self {
        TestRng { state: 0x0197_06F3_5C17_A5D1 ^ salt }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinator implementations.
    use super::TestRng;

    /// Generates values of `Self::Value` from an RNG.
    pub trait Strategy {
        /// The produced value type.
        type Value;
        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = ((rng.next_u64() as u128) % span) as i128;
                    (self.start as i128 + v) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = ((rng.next_u64() as u128) % span) as i128;
                    (lo as i128 + v) as $t
                }
            }
        )*};
    }

    impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuples {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuples! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
    }
}

pub mod arbitrary {
    //! `any::<T>()` — full-domain strategies for primitive types.
    use super::strategy::Strategy;
    use super::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value; early cases hit the domain edges.
        fn arbitrary(rng: &mut TestRng, case: u32) -> Self;
    }

    macro_rules! impl_arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng, case: u32) -> $t {
                    // Bias the first cases toward edge values.
                    match case {
                        0 => <$t>::MIN,
                        1 => <$t>::MAX,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }

    impl_arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng, _case: u32) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T> {
        case: std::cell::Cell<u32>,
        _marker: PhantomData<T>,
    }

    /// Full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any { case: std::cell::Cell::new(0), _marker: PhantomData }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let c = self.case.get();
            self.case.set(c.wrapping_add(1));
            T::arbitrary(rng, c)
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`).
    use super::strategy::Strategy;
    use super::TestRng;

    /// Element-count specification for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }
    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }
    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    /// Strategy yielding `Vec`s of a sub-strategy's values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` strategy with `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let n = self.size.min + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests: each `fn name(arg in strategy, ...)` block runs
/// [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                // Salt the RNG with the test name so properties explore
                // different streams.
                let __pt_salt = {
                    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                    for b in stringify!($name).bytes() {
                        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
                    }
                    h
                };
                let mut __pt_rng = $crate::TestRng::deterministic(__pt_salt);
                // Build the strategies once so stateful ones (e.g. `any`'s
                // edge-case schedule) advance across cases.
                let __pt_strats = ($(($strat),)+);
                for __pt_case in 0..$crate::CASES {
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::generate(&__pt_strats, &mut __pt_rng);
                    let _ = __pt_case;
                    $body
                }
            }
        )*
    };
}

/// Property assertion; panics (failing the case) when false.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 1u8..=4, f in crate::collection::vec(0u32..5, 2..6)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert!(f.len() >= 2 && f.len() <= 5);
            prop_assert!(f.iter().all(|&v| v < 5));
        }

        #[test]
        fn tuples_and_any(pair in (0u32..4, 0u64..100), n in any::<u16>(), mut acc in 0u64..1) {
            prop_assert!(pair.0 < 4 && pair.1 < 100);
            acc += n as u64;
            prop_assert!(acc <= u16::MAX as u64);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::deterministic(9);
        let mut b = crate::TestRng::deterministic(9);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
