//! Minimal API-compatible stand-in for the [`bytes`] crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `bytes` API it actually uses: cheaply
//! clonable [`Bytes`] views, an append-only [`BytesMut`] builder, and the
//! big-endian [`Buf`]/[`BufMut`] cursor traits. Semantics match the real
//! crate for every method provided here.
//!
//! [`bytes`]: https://docs.rs/bytes

use std::sync::Arc;

/// A cheaply clonable, immutable view into a shared byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// A buffer viewing a static slice (copied here; the real crate
    /// borrows, but callers only rely on value semantics).
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Copy `s` into a fresh buffer.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// A sub-view of `range` (relative to this view), sharing storage.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: self.data.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Split off and return the first `at` bytes, advancing `self`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len());
        let front = Bytes { data: self.data.clone(), start: self.start, end: self.start + at };
        self.start += at;
        front
    }

    /// Reclaim the underlying storage as a [`BytesMut`] when this is the
    /// only outstanding handle; otherwise hand `self` back unchanged.
    /// Matches `bytes::Bytes::try_into_mut` semantics: success requires
    /// unique ownership, and the result views exactly the bytes this
    /// view did (capacity beyond the view is retained for reuse).
    pub fn try_into_mut(self) -> Result<BytesMut, Bytes> {
        let Bytes { data, start, end } = self;
        match Arc::try_unwrap(data) {
            Ok(mut v) => {
                v.truncate(end);
                if start > 0 {
                    v.drain(..start);
                }
                Ok(BytesMut { vec: v, read: 0 })
            }
            Err(data) => Err(Bytes { data, start, end }),
        }
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        self.as_slice() == other.as_bytes()
    }
}
impl PartialEq<&str> for Bytes {
    fn eq(&self, other: &&str) -> bool {
        self.as_slice() == other.as_bytes()
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}
impl PartialEq<Bytes> for &[u8] {
    fn eq(&self, other: &Bytes) -> bool {
        *self == other.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: Arc::new(v), start: 0, end }
    }
}
impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}
impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::from(s.as_bytes().to_vec())
    }
}
impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }
}
impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(s: &[u8; N]) -> Self {
        Bytes::from(s.to_vec())
    }
}
impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().to_vec().into_iter()
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
    /// Read cursor for the `Buf` impl (the real crate consumes from the
    /// front; only tests rely on this).
    read: usize,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { vec: Vec::with_capacity(cap), read: 0 }
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.vec.len() - self.read
    }

    /// Whether nothing unread remains.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.vec.extend_from_slice(s);
    }

    /// Reserve additional capacity.
    pub fn reserve(&mut self, additional: usize) {
        self.vec.reserve(additional);
    }

    /// Usable capacity from the current read position.
    pub fn capacity(&self) -> usize {
        self.vec.capacity() - self.read
    }

    /// Drop all contents (read and unread) without releasing storage.
    pub fn clear(&mut self) {
        self.vec.clear();
        self.read = 0;
    }

    /// Truncate the unread region to at most `len` bytes.
    pub fn truncate(&mut self, len: usize) {
        if len < self.len() {
            self.vec.truncate(self.read + len);
        }
    }

    /// Resize the unread region to exactly `new_len` bytes, filling any
    /// growth with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.vec.resize(self.read + new_len, value);
    }

    /// Freeze into an immutable, shareable buffer.
    pub fn freeze(mut self) -> Bytes {
        if self.read > 0 {
            self.vec.drain(..self.read);
        }
        Bytes::from(self.vec)
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec[self.read..]
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let read = self.read;
        &mut self.vec[read..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec[self.read..]
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({:?})", &self.vec[self.read..])
    }
}

/// Read cursor over a byte source; integers decode big-endian, matching
/// the real `bytes` crate.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The current unread contiguous slice.
    fn chunk(&self) -> &[u8];
    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);

    /// Copy `dst.len()` bytes out, advancing.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len());
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Read a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Read a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Read a big-endian i64.
    fn get_i64(&mut self) -> i64 {
        self.get_u64() as i64
    }

    /// Read a big-endian unsigned integer of `nbytes` bytes (≤ 8).
    fn get_uint(&mut self, nbytes: usize) -> u64 {
        assert!(nbytes <= 8);
        let mut v = 0u64;
        for _ in 0..nbytes {
            v = (v << 8) | self.get_u8() as u64;
        }
        v
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len());
        self.start += n;
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        &self.vec[self.read..]
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len());
        self.read += n;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// Write cursor; integers encode big-endian, matching the real crate.
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, s: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian i64.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append the low `nbytes` bytes of `v`, big-endian.
    fn put_uint(&mut self, v: u64, nbytes: usize) {
        assert!(nbytes <= 8);
        let be = v.to_be_bytes();
        self.put_slice(&be[8 - nbytes..]);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.vec.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ints() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u16(0x0102);
        b.put_u32(0xDEADBEEF);
        b.put_u64(42);
        b.put_uint(0x0000_7766_5544_3322, 6);
        b.put_i64(-5);
        let mut r = b.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0x0102);
        assert_eq!(r.get_u32(), 0xDEADBEEF);
        assert_eq!(r.get_u64(), 42);
        assert_eq!(r.get_uint(6), 0x0000_7766_5544_3322);
        assert_eq!(r.get_i64(), -5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_and_split() {
        let mut b = Bytes::from(b"hello world".to_vec());
        let hello = b.split_to(5);
        assert_eq!(hello, Bytes::from_static(b"hello"));
        assert_eq!(b.slice(1..6), Bytes::from_static(b"world"));
        assert_eq!(b.len(), 6);
    }

    #[test]
    fn eq_across_types() {
        let b = Bytes::from("abc");
        assert_eq!(b, *b"abc".as_slice());
        assert!(b == b"abc".as_slice());
        assert_eq!(b.as_ref(), b"abc");
    }

    #[test]
    fn resize_truncate_clear_and_deref_mut() {
        let mut b = BytesMut::new();
        b.resize(8, 0);
        assert_eq!(b.len(), 8);
        b[..4].copy_from_slice(b"abcd");
        b.truncate(4);
        assert_eq!(&b[..], b"abcd");
        // truncate never grows
        b.truncate(100);
        assert_eq!(b.len(), 4);
        b.clear();
        assert!(b.is_empty());
        assert!(b.capacity() >= 8);
    }

    #[test]
    fn resize_respects_read_cursor() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"xxhello");
        b.advance(2);
        assert_eq!(&b[..], b"hello");
        b.resize(3, 0);
        assert_eq!(&b[..], b"hel");
        b.resize(5, b'!');
        assert_eq!(&b[..], b"hel!!");
    }

    #[test]
    fn try_into_mut_unique_and_shared() {
        // Unique handle: storage is reclaimed, view preserved.
        let b = Bytes::from(b"hello world".to_vec());
        let sliced = b.slice(6..11);
        drop(b); // slice must be the only handle left
        let m = sliced.try_into_mut().expect("unique handle reclaims");
        assert_eq!(&m[..], b"world");

        // Shared handle: reclaim fails and returns the original view.
        let b = Bytes::from(b"shared".to_vec());
        let clone = b.clone();
        let back = b.try_into_mut().expect_err("shared handle must fail");
        assert_eq!(back, clone);
        drop(clone);
        // Last handle standing succeeds again.
        let m = back.try_into_mut().expect("now unique");
        assert_eq!(&m[..], b"shared");
    }

    #[test]
    fn recycle_keeps_capacity_for_pool_reuse() {
        // The UDP receive pool relies on freeze → slice → drop-slices →
        // try_into_mut to recycle a full-size buffer without re-zeroing.
        let mut b = BytesMut::new();
        b.resize(1024, 0);
        let full = b.freeze();
        let frame = full.slice(0..10);
        assert!(frame.clone().try_into_mut().is_err(), "two handles alive");
        drop(frame);
        let back = full.try_into_mut().expect("slices dropped");
        assert_eq!(back.len(), 1024, "full-length buffer comes back");
    }
}
