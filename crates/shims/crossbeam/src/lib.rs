//! Minimal API-compatible stand-in for the [`crossbeam`] crate.
//!
//! The build environment cannot reach crates.io; the workspace only uses
//! `crossbeam::channel::{unbounded, Sender, Receiver}` with the
//! `send` / `recv_timeout` / `try_iter` methods, all of which
//! `std::sync::mpsc` provides with identical semantics for a single
//! consumer (the only usage pattern in this repo).
//!
//! [`crossbeam`]: https://docs.rs/crossbeam

pub mod channel {
    //! Multi-producer channels, backed by `std::sync::mpsc`.
    pub use std::sync::mpsc::{Receiver, SendError, Sender};

    /// An unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;
    use std::time::Duration;

    #[test]
    fn send_recv_timeout() {
        let (tx, rx) = unbounded();
        tx.send(41u32).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)).ok(), Some(41));
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)).ok(), None);
    }

    #[test]
    fn try_iter_drains() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = rx.try_iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }
}
