//! Property tests for the management-plane codec.
//!
//! `MgmtFrame` payloads arrive over the same untrusted UDP sockets as
//! data datagrams: every frame the encoder can produce must round-trip
//! bit-exactly, and truncated or bit-flipped inputs must decode to an
//! error (or a different valid frame) — never panic.

use bytes::Bytes;
use onepipe_controller::protocol::{CtrlAction, CtrlEvent};
use onepipe_controller::raft::{LogEntry, RaftMsg};
use onepipe_controller::wire::MgmtFrame;
use onepipe_types::ids::{NodeId, ProcessId};
use onepipe_types::time::Timestamp;
use onepipe_types::wire::{Datagram, Flags, Opcode, PacketHeader};
use proptest::prelude::*;

/// Deterministically expand one u64 seed into a frame covering every
/// variant; the remaining draws vary the fields.
fn mk_frame(variant: u8, a: u64, b: u64, c: u32, seed: u64) -> MgmtFrame {
    let ts = Timestamp::from_raw(a);
    match variant % 9 {
        0 => MgmtFrame::Event(CtrlEvent::Detect {
            reporter: NodeId(c),
            dead: NodeId(c.wrapping_add(1)),
            last_commit: ts,
            at: b,
        }),
        1 => MgmtFrame::Event(CtrlEvent::UndeliverableRecall {
            to: ProcessId(c),
            ts,
            seq: b,
            sender: ProcessId(c.wrapping_mul(3)),
        }),
        2 => MgmtFrame::Action {
            epoch: a,
            action: CtrlAction::Announce {
                id: b,
                to: ProcessId(c),
                failures: vec![
                    (ProcessId(c.wrapping_add(7)), ts),
                    (ProcessId(c.wrapping_add(9)), Timestamp::from_raw(b)),
                ],
            },
        },
        3 => MgmtFrame::Action {
            epoch: a,
            action: CtrlAction::Resume { at: NodeId(c), input: NodeId(c.wrapping_add(2)) },
        },
        4 => MgmtFrame::Forward(Datagram {
            src: ProcessId(c),
            dst: ProcessId(c.wrapping_add(1)),
            header: PacketHeader {
                msg_ts: ts,
                barrier: Timestamp::from_raw(b),
                commit_barrier: Timestamp::from_raw(a ^ b),
                psn: c,
                opcode: Opcode::from_u8((seed % 10) as u8).unwrap(),
                flags: Flags::from_bits((seed >> 4) as u8 & 0x0F),
            },
            payload: Bytes::from(seed.to_le_bytes().to_vec()),
        }),
        5 => MgmtFrame::Raft {
            from: c,
            msg: RaftMsg::Append {
                term: a,
                prev_log_index: b,
                prev_log_term: a ^ b,
                entries: vec![LogEntry { term: a, data: seed.to_le_bytes().to_vec() }],
                leader_commit: b.wrapping_add(1),
            },
        },
        6 => MgmtFrame::Req {
            seq: a,
            ev: CtrlEvent::CallbackComplete { announce_id: b, from: ProcessId(c) },
        },
        7 => MgmtFrame::Ack { seq: a },
        _ => MgmtFrame::Redirect { seq: a, leader: c },
    }
}

proptest! {
    /// encode -> decode is the identity across every frame variant.
    #[test]
    fn mgmt_frame_roundtrip(
        variant in 0u8..9,
        a in any::<u64>(),
        b in any::<u64>(),
        c in any::<u32>(),
        seed in any::<u64>(),
    ) {
        let f = mk_frame(variant, a, b, c, seed);
        let decoded = MgmtFrame::decode(f.encode()).expect("decodes");
        prop_assert_eq!(decoded, f);
    }

    /// Truncating an encoded frame anywhere yields an error or a valid
    /// shorter parse — never a panic.
    #[test]
    fn truncated_mgmt_frame_never_panics(
        variant in 0u8..9,
        a in any::<u64>(),
        b in any::<u64>(),
        c in any::<u32>(),
        seed in any::<u64>(),
        cut_pm in 0usize..1000,
    ) {
        let raw = mk_frame(variant, a, b, c, seed).encode();
        let cut = raw.len() * cut_pm / 1000;
        let _ = MgmtFrame::decode(raw.slice(0..cut));
    }

    /// A single flipped bit anywhere in the encoding never panics the
    /// decoder.
    #[test]
    fn bitflipped_mgmt_frame_never_panics(
        variant in 0u8..9,
        a in any::<u64>(),
        b in any::<u64>(),
        c in any::<u32>(),
        seed in any::<u64>(),
        pos_pm in 0usize..1000,
        xor in 1u8..=255u8,
    ) {
        let mut raw = mk_frame(variant, a, b, c, seed).encode().to_vec();
        let at = pos_pm * raw.len() / 1000;
        let at = at.min(raw.len() - 1);
        raw[at] ^= xor;
        let _ = MgmtFrame::decode(Bytes::from(raw));
    }

    /// Random bytes never panic the decoder.
    #[test]
    fn random_bytes_never_panic_mgmt(raw in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = MgmtFrame::decode(Bytes::from(raw));
    }
}
