//! Adversarial property tests for the Raft module: a seeded hostile
//! network delivers messages with arbitrary loss, duplication, and
//! reordering, and the two safety properties of the paper's controller
//! replication must hold throughout:
//!
//! * **Election safety** — at most one leader per term;
//! * **Log matching** — committed prefixes never diverge across replicas.
//!
//! After the adversary stops (the network heals), the cluster must also
//! recover: elect a leader and converge every replica onto the same
//! committed log (liveness under eventual delivery).

use onepipe_controller::raft::{LogEntry, RaftConfig, RaftMsg, RaftNode};
use proptest::prelude::*;
use std::collections::HashMap;

/// SplitMix64 — the adversary's private randomness (the proptest shim
/// supplies the seed).
struct Adversary(u64);

impl Adversary {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

struct HostileNet {
    nodes: Vec<RaftNode>,
    /// Messages in flight: (from, to, msg). The adversary picks delivery
    /// order, drops, and duplicates from here.
    pending: Vec<(u32, u32, RaftMsg)>,
    /// Committed entries each replica has applied, in order.
    applied: Vec<Vec<LogEntry>>,
    /// Observed leader per term (election safety witness).
    leaders_of_term: HashMap<u64, u32>,
    /// Last term in which the healed phase wrote its no-op barrier.
    noop_term: u64,
    now: u64,
}

impl HostileNet {
    fn new(n: u32) -> Self {
        let cfg = RaftConfig { election_timeout: 1_000, heartbeat_interval: 200 };
        let nodes: Vec<RaftNode> =
            (0..n).map(|i| RaftNode::new(i, (0..n).filter(|&p| p != i).collect(), cfg)).collect();
        HostileNet {
            applied: vec![Vec::new(); nodes.len()],
            nodes,
            pending: Vec::new(),
            leaders_of_term: HashMap::new(),
            noop_term: 0,
            now: 0,
        }
    }

    fn check_invariants(&mut self) {
        for node in &self.nodes {
            if node.is_leader() {
                let prev = self.leaders_of_term.entry(node.term()).or_insert_with(|| node.id());
                assert_eq!(
                    *prev,
                    node.id(),
                    "election safety violated: two leaders in term {}",
                    node.term()
                );
            }
        }
        for i in 0..self.nodes.len() {
            for e in self.nodes[i].take_committed() {
                self.applied[i].push(e);
            }
        }
        // Log matching: any two committed prefixes agree entry-for-entry.
        for i in 0..self.applied.len() {
            for j in (i + 1)..self.applied.len() {
                let common = self.applied[i].len().min(self.applied[j].len());
                assert_eq!(
                    self.applied[i][..common],
                    self.applied[j][..common],
                    "log matching violated between replicas {i} and {j}"
                );
            }
        }
    }

    /// One adversarial step: advance time, gather traffic, and let the
    /// adversary deliver / drop / duplicate / reorder at will.
    fn hostile_step(&mut self, adv: &mut Adversary, proposal_counter: &mut u64) {
        self.now += 50;
        for i in 0..self.nodes.len() {
            for (to, m) in self.nodes[i].tick(self.now) {
                self.pending.push((i as u32, to, m));
            }
            // Leaders occasionally propose so the logs are non-trivial.
            if self.nodes[i].is_leader() && adv.below(4) == 0 {
                *proposal_counter += 1;
                self.nodes[i].propose(proposal_counter.to_le_bytes().to_vec());
            }
        }
        // Deliver a random number of messages from random positions
        // (reordering); each picked message may be dropped or duplicated.
        let deliveries = adv.below(8);
        for _ in 0..deliveries {
            if self.pending.is_empty() {
                break;
            }
            let idx = adv.below(self.pending.len());
            let (from, to, msg) = self.pending.swap_remove(idx);
            match adv.below(8) {
                0 => {} // dropped
                1 => {
                    // duplicated: deliver now and leave a copy in flight
                    self.deliver(from, to, msg.clone());
                    self.pending.push((from, to, msg));
                }
                _ => self.deliver(from, to, msg),
            }
        }
        // The adversary may also silently lose backlog (bounded queue).
        while self.pending.len() > 256 {
            let idx = adv.below(self.pending.len());
            self.pending.swap_remove(idx);
        }
        self.check_invariants();
    }

    fn deliver(&mut self, from: u32, to: u32, msg: RaftMsg) {
        for (rt, rm) in self.nodes[to as usize].on_message(from, msg, self.now) {
            self.pending.push((to, rt, rm));
        }
    }

    /// Healed phase: deliver everything promptly until quiescent.
    fn healed_step(&mut self) {
        self.now += 50;
        for i in 0..self.nodes.len() {
            for (to, m) in self.nodes[i].tick(self.now) {
                self.pending.push((i as u32, to, m));
            }
            // Raft cannot commit prior-term entries without a current-term
            // entry: give each healed leader one no-op barrier (the role
            // NewEpoch plays in the replicated controller).
            if self.nodes[i].is_leader() && self.nodes[i].term() > self.noop_term {
                self.noop_term = self.nodes[i].term();
                self.nodes[i].propose(Vec::new());
            }
        }
        while let Some((from, to, msg)) = self.pending.pop() {
            self.deliver(from, to, msg);
        }
        self.check_invariants();
    }
}

proptest! {
    #[test]
    fn safety_under_loss_duplication_reordering(seed in any::<u64>()) {
        let mut net = HostileNet::new(3);
        let mut adv = Adversary(seed);
        let mut proposals = 0u64;
        for _ in 0..600 {
            net.hostile_step(&mut adv, &mut proposals);
        }
        // Heal the network: liveness requires a leader to emerge and all
        // replicas to converge on one committed log.
        for _ in 0..400 {
            net.healed_step();
        }
        let leaders = net.nodes.iter().filter(|n| n.is_leader()).count();
        prop_assert_eq!(leaders, 1, "healed cluster must elect exactly one leader");
        let max_applied = net.applied.iter().map(|a| a.len()).max().unwrap();
        for (i, a) in net.applied.iter().enumerate() {
            prop_assert_eq!(
                a.len(), max_applied,
                "replica {} did not converge after healing", i
            );
        }
    }

    #[test]
    fn five_replica_safety_under_heavier_chaos(seed in any::<u64>()) {
        let mut net = HostileNet::new(5);
        let mut adv = Adversary(seed ^ 0x5EED);
        let mut proposals = 0u64;
        for _ in 0..400 {
            net.hostile_step(&mut adv, &mut proposals);
        }
        for _ in 0..400 {
            net.healed_step();
        }
        prop_assert_eq!(net.nodes.iter().filter(|n| n.is_leader()).count(), 1);
    }
}
