//! Capped exponential backoff for control-plane requests.
//!
//! Hosts (and the sim's modelled management network) use this policy for
//! requests that must reach the controller *log*: send, wait, and if no
//! acknowledgement arrives, retry with exponentially growing delays up to
//! a cap and a bounded attempt count. Bounding matters in both
//! directions: no unbounded spin against a dead controller cluster, and
//! no silent drop — callers observe exhaustion and surface it.

/// A capped exponential backoff schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Delay before the first retry (ns).
    pub base: u64,
    /// Upper bound on any single delay (ns).
    pub cap: u64,
    /// Total attempts (first try included). After this many the request
    /// is abandoned and the caller must report the drop.
    pub max_attempts: u32,
}

impl RetryPolicy {
    /// Backoff after `attempt` tries have already been made (so the delay
    /// before attempt `attempt + 1`): `min(base << (attempt-1), cap)`.
    /// `attempt == 0` means nothing has been sent yet — no delay.
    pub fn delay(&self, attempt: u32) -> u64 {
        if attempt == 0 {
            return 0;
        }
        let shift = (attempt - 1).min(32);
        self.base.saturating_mul(1u64 << shift).min(self.cap)
    }

    /// Whether the request is out of attempts.
    pub fn exhausted(&self, attempt: u32) -> bool {
        attempt >= self.max_attempts
    }

    /// Worst-case total time spent retrying (sum of all delays), useful
    /// for sizing drain windows in tests.
    pub fn total_span(&self) -> u64 {
        (1..self.max_attempts).map(|a| self.delay(a)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_double_then_cap() {
        let p = RetryPolicy { base: 10, cap: 80, max_attempts: 7 };
        let delays: Vec<u64> = (0..7).map(|a| p.delay(a)).collect();
        assert_eq!(delays, vec![0, 10, 20, 40, 80, 80, 80]);
    }

    #[test]
    fn exhaustion_is_bounded() {
        let p = RetryPolicy { base: 1, cap: 4, max_attempts: 3 };
        assert!(!p.exhausted(2));
        assert!(p.exhausted(3));
        assert_eq!(p.total_span(), 1 + 2);
    }

    #[test]
    fn no_overflow_at_large_attempts() {
        let p = RetryPolicy { base: u64::MAX / 2, cap: u64::MAX, max_attempts: 100 };
        assert_eq!(p.delay(99), u64::MAX);
    }
}
