//! Management-plane framing: what controller traffic looks like on a real
//! transport.
//!
//! The simulator harness hands [`CtrlEvent`]s and [`CtrlAction`]s around
//! as in-memory values; a real deployment must put them on the wire. A
//! [`MgmtFrame`] is the payload of an `Opcode::Mgmt` datagram travelling
//! over the management network between hosts, switches, and the
//! controller leader:
//!
//! * **Event** — switch dead-link reports and host `CtrlRequest`s going
//!   *to* the controller (the same [`CtrlEvent`]s that enter the
//!   replicated log, reusing its codec);
//! * **Action** — Announce / Resume / RecoveryInfo decisions going *from*
//!   the controller to hosts and switches;
//! * **Forward** — a full 1Pipe datagram relayed through the controller
//!   when the direct path is dead (§5.2's forwarding fallback), carried
//!   opaquely.

use crate::protocol::{CtrlAction, CtrlEvent};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use onepipe_types::ids::{NodeId, ProcessId};
use onepipe_types::time::Timestamp;
use onepipe_types::wire::Datagram;

/// One management-plane message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MgmtFrame {
    /// Toward the controller: a report or request entering its log.
    Event(CtrlEvent),
    /// From the controller: a decision for a host or switch to carry out.
    Action(CtrlAction),
    /// A datagram relayed through the controller (forwarding fallback).
    Forward(Datagram),
}

impl MgmtFrame {
    /// Serialize for an `Opcode::Mgmt` datagram payload.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::new();
        match self {
            MgmtFrame::Event(ev) => {
                b.put_u8(0);
                b.extend_from_slice(&ev.encode());
            }
            MgmtFrame::Action(a) => {
                b.put_u8(1);
                encode_action(a, &mut b);
            }
            MgmtFrame::Forward(d) => {
                b.put_u8(2);
                b.extend_from_slice(&d.encode());
            }
        }
        b.freeze()
    }

    /// Decode a frame produced by [`encode`](Self::encode).
    pub fn decode(mut buf: Bytes) -> onepipe_types::Result<Self> {
        use onepipe_types::Error;
        if buf.remaining() < 1 {
            return Err(Error::Truncated { needed: 1, got: 0 });
        }
        let tag = buf.get_u8();
        Ok(match tag {
            0 => MgmtFrame::Event(CtrlEvent::decode(buf)?),
            1 => MgmtFrame::Action(decode_action(buf)?),
            2 => MgmtFrame::Forward(Datagram::decode(buf)?),
            other => return Err(Error::BadOpcode(other)),
        })
    }
}

fn encode_action(a: &CtrlAction, b: &mut BytesMut) {
    match a {
        CtrlAction::Announce { id, to, failures } => {
            b.put_u8(0);
            b.put_u64(*id);
            b.put_u32(to.0);
            b.put_u32(failures.len() as u32);
            for (p, ts) in failures {
                b.put_u32(p.0);
                b.put_uint(ts.raw(), 6);
            }
        }
        CtrlAction::Resume { at, input } => {
            b.put_u8(1);
            b.put_u32(at.0);
            b.put_u32(input.0);
        }
        CtrlAction::RecoveryInfo { to, failures, recalls } => {
            b.put_u8(2);
            b.put_u32(to.0);
            b.put_u32(failures.len() as u32);
            for (p, ts) in failures {
                b.put_u32(p.0);
                b.put_uint(ts.raw(), 6);
            }
            b.put_u32(recalls.len() as u32);
            for (p, ts, seq) in recalls {
                b.put_u32(p.0);
                b.put_uint(ts.raw(), 6);
                b.put_u64(*seq);
            }
        }
    }
}

fn decode_action(mut buf: Bytes) -> onepipe_types::Result<CtrlAction> {
    use onepipe_types::Error;
    let need = |buf: &Bytes, n: usize| -> onepipe_types::Result<()> {
        if buf.remaining() < n {
            Err(Error::Truncated { needed: n, got: buf.remaining() })
        } else {
            Ok(())
        }
    };
    need(&buf, 1)?;
    let tag = buf.get_u8();
    Ok(match tag {
        0 => {
            need(&buf, 8 + 4 + 4)?;
            let id = buf.get_u64();
            let to = ProcessId(buf.get_u32());
            let n = buf.get_u32() as usize;
            need(&buf, n * (4 + 6))?;
            let mut failures = Vec::with_capacity(n);
            for _ in 0..n {
                failures.push((ProcessId(buf.get_u32()), Timestamp::from_raw(buf.get_uint(6))));
            }
            CtrlAction::Announce { id, to, failures }
        }
        1 => {
            need(&buf, 4 + 4)?;
            CtrlAction::Resume { at: NodeId(buf.get_u32()), input: NodeId(buf.get_u32()) }
        }
        2 => {
            need(&buf, 4 + 4)?;
            let to = ProcessId(buf.get_u32());
            let n = buf.get_u32() as usize;
            need(&buf, n * (4 + 6))?;
            let mut failures = Vec::with_capacity(n);
            for _ in 0..n {
                failures.push((ProcessId(buf.get_u32()), Timestamp::from_raw(buf.get_uint(6))));
            }
            need(&buf, 4)?;
            let m = buf.get_u32() as usize;
            need(&buf, m * (4 + 6 + 8))?;
            let mut recalls = Vec::with_capacity(m);
            for _ in 0..m {
                recalls.push((
                    ProcessId(buf.get_u32()),
                    Timestamp::from_raw(buf.get_uint(6)),
                    buf.get_u64(),
                ));
            }
            CtrlAction::RecoveryInfo { to, failures, recalls }
        }
        other => return Err(Error::BadOpcode(other)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use onepipe_types::wire::{Flags, Opcode, PacketHeader};

    fn ts(v: u64) -> Timestamp {
        Timestamp::from_nanos(v)
    }

    #[test]
    fn frame_codec_roundtrip() {
        let frames = vec![
            MgmtFrame::Event(CtrlEvent::Detect {
                reporter: NodeId(4),
                dead: NodeId(1),
                last_commit: ts(12_345),
                at: 678,
            }),
            MgmtFrame::Event(CtrlEvent::CallbackComplete { announce_id: 2, from: ProcessId(1) }),
            MgmtFrame::Action(CtrlAction::Announce {
                id: 7,
                to: ProcessId(3),
                failures: vec![(ProcessId(2), ts(99)), (ProcessId(5), ts(100))],
            }),
            MgmtFrame::Action(CtrlAction::Resume { at: NodeId(0), input: NodeId(2) }),
            MgmtFrame::Action(CtrlAction::RecoveryInfo {
                to: ProcessId(1),
                failures: vec![(ProcessId(2), ts(50))],
                recalls: vec![(ProcessId(0), ts(49), 3)],
            }),
            MgmtFrame::Forward(Datagram {
                src: ProcessId(0),
                dst: ProcessId(1),
                header: PacketHeader {
                    msg_ts: ts(1),
                    barrier: ts(2),
                    commit_barrier: ts(3),
                    psn: 4,
                    opcode: Opcode::DataReliable,
                    flags: Flags::END_OF_MESSAGE,
                },
                payload: Bytes::from_static(b"relayed"),
            }),
        ];
        for f in frames {
            let decoded = MgmtFrame::decode(f.encode()).unwrap();
            assert_eq!(decoded, f);
        }
    }

    #[test]
    fn frame_codec_rejects_garbage() {
        assert!(MgmtFrame::decode(Bytes::new()).is_err());
        assert!(MgmtFrame::decode(Bytes::from_static(&[7])).is_err());
        assert!(MgmtFrame::decode(Bytes::from_static(&[1, 9, 0])).is_err());
        // Action with a length prefix pointing past the buffer.
        assert!(MgmtFrame::decode(Bytes::from_static(&[
            1, 0, 0, 0, 0, 0, 0, 0, 0, 9, 0, 0, 0, 3, 0, 0, 0, 255
        ]))
        .is_err());
    }
}
