//! Management-plane framing: what controller traffic looks like on a real
//! transport.
//!
//! The simulator harness hands [`CtrlEvent`]s and [`CtrlAction`]s around
//! as in-memory values; a real deployment must put them on the wire. A
//! [`MgmtFrame`] is the payload of an `Opcode::Mgmt` datagram travelling
//! over the management network between hosts, switches, and the
//! controller leader:
//!
//! * **Event** — switch dead-link reports going *to* the controller (the
//!   same [`CtrlEvent`]s that enter the replicated log, reusing its
//!   codec), fire-and-forget — switches re-report until resumed;
//! * **Req / Ack / Redirect** — host `CtrlRequest`s under the retry
//!   protocol: a host tags its event with a sequence number, retries with
//!   capped exponential backoff until the leader acks (on *commit*, not
//!   receipt), and follows `Redirect`s from non-leader replicas;
//! * **Action** — Announce / Resume / RecoveryInfo decisions going *from*
//!   the controller to hosts and switches, tagged with the leader's epoch
//!   (Raft term) so receivers can fence off deposed leaders;
//! * **Raft** — replica-to-replica consensus traffic;
//! * **Forward** — a full 1Pipe datagram relayed through the controller
//!   when the direct path is dead (§5.2's forwarding fallback), carried
//!   opaquely.

use crate::protocol::{CtrlAction, CtrlEvent};
use crate::raft::{LogEntry, RaftMsg};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use onepipe_types::ids::{NodeId, ProcessId};
use onepipe_types::time::Timestamp;
use onepipe_types::wire::Datagram;

/// One management-plane message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MgmtFrame {
    /// Toward the controller: a report or request entering its log.
    Event(CtrlEvent),
    /// From the controller: a decision for a host or switch to carry out,
    /// fenced by the emitting leader's epoch.
    Action {
        /// Raft term of the leader that emitted the action.
        epoch: u64,
        /// The decision itself.
        action: CtrlAction,
    },
    /// A datagram relayed through the controller (forwarding fallback).
    Forward(Datagram),
    /// Consensus traffic between controller replicas.
    Raft {
        /// Sending replica id.
        from: u32,
        /// The Raft message.
        msg: RaftMsg,
    },
    /// A host control request that expects an [`MgmtFrame::Ack`]; `seq` is
    /// the host's retry-correlation number.
    Req {
        /// Host-chosen correlation number, echoed in the reply.
        seq: u64,
        /// The request entering the controller log.
        ev: CtrlEvent,
    },
    /// Leader acknowledgement that request `seq` has *committed*.
    Ack {
        /// Correlation number of the acknowledged request.
        seq: u64,
    },
    /// A non-leader replica pointing the host at its best leader guess.
    Redirect {
        /// Correlation number of the redirected request.
        seq: u64,
        /// Replica id believed to be the leader.
        leader: u32,
    },
}

impl MgmtFrame {
    /// Serialize for an `Opcode::Mgmt` datagram payload.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::new();
        match self {
            MgmtFrame::Event(ev) => {
                b.put_u8(0);
                b.extend_from_slice(&ev.encode());
            }
            MgmtFrame::Action { epoch, action } => {
                b.put_u8(1);
                b.put_u64(*epoch);
                encode_action(action, &mut b);
            }
            MgmtFrame::Forward(d) => {
                b.put_u8(2);
                b.extend_from_slice(&d.encode());
            }
            MgmtFrame::Raft { from, msg } => {
                b.put_u8(3);
                b.put_u32(*from);
                encode_raft(msg, &mut b);
            }
            MgmtFrame::Req { seq, ev } => {
                b.put_u8(4);
                b.put_u64(*seq);
                b.extend_from_slice(&ev.encode());
            }
            MgmtFrame::Ack { seq } => {
                b.put_u8(5);
                b.put_u64(*seq);
            }
            MgmtFrame::Redirect { seq, leader } => {
                b.put_u8(6);
                b.put_u64(*seq);
                b.put_u32(*leader);
            }
        }
        b.freeze()
    }

    /// Decode a frame produced by [`encode`](Self::encode).
    pub fn decode(mut buf: Bytes) -> onepipe_types::Result<Self> {
        use onepipe_types::Error;
        let need = |buf: &Bytes, n: usize| -> onepipe_types::Result<()> {
            if buf.remaining() < n {
                Err(Error::Truncated { needed: n, got: buf.remaining() })
            } else {
                Ok(())
            }
        };
        need(&buf, 1)?;
        let tag = buf.get_u8();
        Ok(match tag {
            0 => MgmtFrame::Event(CtrlEvent::decode(buf)?),
            1 => {
                need(&buf, 8)?;
                let epoch = buf.get_u64();
                MgmtFrame::Action { epoch, action: decode_action(buf)? }
            }
            2 => MgmtFrame::Forward(Datagram::decode(buf)?),
            3 => {
                need(&buf, 4)?;
                let from = buf.get_u32();
                MgmtFrame::Raft { from, msg: decode_raft(&mut buf)? }
            }
            4 => {
                need(&buf, 8)?;
                let seq = buf.get_u64();
                MgmtFrame::Req { seq, ev: CtrlEvent::decode(buf)? }
            }
            5 => {
                need(&buf, 8)?;
                MgmtFrame::Ack { seq: buf.get_u64() }
            }
            6 => {
                need(&buf, 8 + 4)?;
                MgmtFrame::Redirect { seq: buf.get_u64(), leader: buf.get_u32() }
            }
            other => return Err(Error::BadOpcode(other)),
        })
    }
}

fn encode_raft(m: &RaftMsg, b: &mut BytesMut) {
    match m {
        RaftMsg::RequestVote { term, last_log_index, last_log_term } => {
            b.put_u8(0);
            b.put_u64(*term);
            b.put_u64(*last_log_index);
            b.put_u64(*last_log_term);
        }
        RaftMsg::Vote { term, granted } => {
            b.put_u8(1);
            b.put_u64(*term);
            b.put_u8(*granted as u8);
        }
        RaftMsg::Append { term, prev_log_index, prev_log_term, entries, leader_commit } => {
            b.put_u8(2);
            b.put_u64(*term);
            b.put_u64(*prev_log_index);
            b.put_u64(*prev_log_term);
            b.put_u64(*leader_commit);
            b.put_u32(entries.len() as u32);
            for e in entries {
                b.put_u64(e.term);
                b.put_u32(e.data.len() as u32);
                b.extend_from_slice(&e.data);
            }
        }
        RaftMsg::AppendResp { term, ok, match_index } => {
            b.put_u8(3);
            b.put_u64(*term);
            b.put_u8(*ok as u8);
            b.put_u64(*match_index);
        }
    }
}

fn decode_raft(buf: &mut Bytes) -> onepipe_types::Result<RaftMsg> {
    use onepipe_types::Error;
    let need = |buf: &Bytes, n: usize| -> onepipe_types::Result<()> {
        if buf.remaining() < n {
            Err(Error::Truncated { needed: n, got: buf.remaining() })
        } else {
            Ok(())
        }
    };
    need(buf, 1)?;
    let tag = buf.get_u8();
    Ok(match tag {
        0 => {
            need(buf, 24)?;
            RaftMsg::RequestVote {
                term: buf.get_u64(),
                last_log_index: buf.get_u64(),
                last_log_term: buf.get_u64(),
            }
        }
        1 => {
            need(buf, 9)?;
            RaftMsg::Vote { term: buf.get_u64(), granted: buf.get_u8() != 0 }
        }
        2 => {
            need(buf, 36)?;
            let term = buf.get_u64();
            let prev_log_index = buf.get_u64();
            let prev_log_term = buf.get_u64();
            let leader_commit = buf.get_u64();
            let n = buf.get_u32() as usize;
            let mut entries = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                need(buf, 12)?;
                let term = buf.get_u64();
                let len = buf.get_u32() as usize;
                need(buf, len)?;
                entries.push(LogEntry { term, data: buf.split_to(len).to_vec() });
            }
            RaftMsg::Append { term, prev_log_index, prev_log_term, entries, leader_commit }
        }
        3 => {
            need(buf, 17)?;
            RaftMsg::AppendResp {
                term: buf.get_u64(),
                ok: buf.get_u8() != 0,
                match_index: buf.get_u64(),
            }
        }
        other => return Err(Error::BadOpcode(other)),
    })
}

fn encode_action(a: &CtrlAction, b: &mut BytesMut) {
    match a {
        CtrlAction::Announce { id, to, failures } => {
            b.put_u8(0);
            b.put_u64(*id);
            b.put_u32(to.0);
            b.put_u32(failures.len() as u32);
            for (p, ts) in failures {
                b.put_u32(p.0);
                b.put_uint(ts.raw(), 6);
            }
        }
        CtrlAction::Resume { at, input } => {
            b.put_u8(1);
            b.put_u32(at.0);
            b.put_u32(input.0);
        }
        CtrlAction::RecoveryInfo { to, failures, recalls } => {
            b.put_u8(2);
            b.put_u32(to.0);
            b.put_u32(failures.len() as u32);
            for (p, ts) in failures {
                b.put_u32(p.0);
                b.put_uint(ts.raw(), 6);
            }
            b.put_u32(recalls.len() as u32);
            for (p, ts, seq) in recalls {
                b.put_u32(p.0);
                b.put_uint(ts.raw(), 6);
                b.put_u64(*seq);
            }
        }
    }
}

fn decode_action(mut buf: Bytes) -> onepipe_types::Result<CtrlAction> {
    use onepipe_types::Error;
    let need = |buf: &Bytes, n: usize| -> onepipe_types::Result<()> {
        if buf.remaining() < n {
            Err(Error::Truncated { needed: n, got: buf.remaining() })
        } else {
            Ok(())
        }
    };
    need(&buf, 1)?;
    let tag = buf.get_u8();
    Ok(match tag {
        0 => {
            need(&buf, 8 + 4 + 4)?;
            let id = buf.get_u64();
            let to = ProcessId(buf.get_u32());
            let n = buf.get_u32() as usize;
            need(&buf, n * (4 + 6))?;
            let mut failures = Vec::with_capacity(n);
            for _ in 0..n {
                failures.push((ProcessId(buf.get_u32()), Timestamp::from_raw(buf.get_uint(6))));
            }
            CtrlAction::Announce { id, to, failures }
        }
        1 => {
            need(&buf, 4 + 4)?;
            CtrlAction::Resume { at: NodeId(buf.get_u32()), input: NodeId(buf.get_u32()) }
        }
        2 => {
            need(&buf, 4 + 4)?;
            let to = ProcessId(buf.get_u32());
            let n = buf.get_u32() as usize;
            need(&buf, n * (4 + 6))?;
            let mut failures = Vec::with_capacity(n);
            for _ in 0..n {
                failures.push((ProcessId(buf.get_u32()), Timestamp::from_raw(buf.get_uint(6))));
            }
            need(&buf, 4)?;
            let m = buf.get_u32() as usize;
            need(&buf, m * (4 + 6 + 8))?;
            let mut recalls = Vec::with_capacity(m);
            for _ in 0..m {
                recalls.push((
                    ProcessId(buf.get_u32()),
                    Timestamp::from_raw(buf.get_uint(6)),
                    buf.get_u64(),
                ));
            }
            CtrlAction::RecoveryInfo { to, failures, recalls }
        }
        other => return Err(Error::BadOpcode(other)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use onepipe_types::wire::{Flags, Opcode, PacketHeader};

    fn ts(v: u64) -> Timestamp {
        Timestamp::from_nanos(v)
    }

    #[test]
    fn frame_codec_roundtrip() {
        let frames = vec![
            MgmtFrame::Event(CtrlEvent::Detect {
                reporter: NodeId(4),
                dead: NodeId(1),
                last_commit: ts(12_345),
                at: 678,
            }),
            MgmtFrame::Event(CtrlEvent::CallbackComplete { announce_id: 2, from: ProcessId(1) }),
            MgmtFrame::Action {
                epoch: 3,
                action: CtrlAction::Announce {
                    id: 7,
                    to: ProcessId(3),
                    failures: vec![(ProcessId(2), ts(99)), (ProcessId(5), ts(100))],
                },
            },
            MgmtFrame::Action {
                epoch: 9,
                action: CtrlAction::Resume { at: NodeId(0), input: NodeId(2) },
            },
            MgmtFrame::Action {
                epoch: 1,
                action: CtrlAction::RecoveryInfo {
                    to: ProcessId(1),
                    failures: vec![(ProcessId(2), ts(50))],
                    recalls: vec![(ProcessId(0), ts(49), 3)],
                },
            },
            MgmtFrame::Raft {
                from: 2,
                msg: RaftMsg::RequestVote { term: 5, last_log_index: 9, last_log_term: 4 },
            },
            MgmtFrame::Raft { from: 0, msg: RaftMsg::Vote { term: 5, granted: true } },
            MgmtFrame::Raft {
                from: 1,
                msg: RaftMsg::Append {
                    term: 6,
                    prev_log_index: 2,
                    prev_log_term: 5,
                    entries: vec![
                        LogEntry { term: 6, data: b"abc".to_vec() },
                        LogEntry { term: 6, data: vec![] },
                    ],
                    leader_commit: 2,
                },
            },
            MgmtFrame::Raft {
                from: 2,
                msg: RaftMsg::AppendResp { term: 6, ok: false, match_index: 0 },
            },
            MgmtFrame::Req {
                seq: 11,
                ev: CtrlEvent::CallbackComplete { announce_id: 2, from: ProcessId(1) },
            },
            MgmtFrame::Ack { seq: 11 },
            MgmtFrame::Redirect { seq: 12, leader: 1 },
            MgmtFrame::Forward(Datagram {
                src: ProcessId(0),
                dst: ProcessId(1),
                header: PacketHeader {
                    msg_ts: ts(1),
                    barrier: ts(2),
                    commit_barrier: ts(3),
                    psn: 4,
                    opcode: Opcode::DataReliable,
                    flags: Flags::END_OF_MESSAGE,
                },
                payload: Bytes::from_static(b"relayed"),
            }),
        ];
        for f in frames {
            let decoded = MgmtFrame::decode(f.encode()).unwrap();
            assert_eq!(decoded, f);
        }
    }

    #[test]
    fn frame_codec_rejects_garbage() {
        assert!(MgmtFrame::decode(Bytes::new()).is_err());
        assert!(MgmtFrame::decode(Bytes::from_static(&[7])).is_err());
        assert!(MgmtFrame::decode(Bytes::from_static(&[1, 9, 0])).is_err());
        // Action with a length prefix pointing past the buffer.
        assert!(MgmtFrame::decode(Bytes::from_static(&[
            1, 0, 0, 0, 0, 0, 0, 0, 0, 9, 0, 0, 0, 3, 0, 0, 0, 255
        ]))
        .is_err());
    }
}
