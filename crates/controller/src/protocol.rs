//! The failure-recovery protocol (paper §5.2, Figure 7).
//!
//! The controller consumes **events** (Detect reports from switches and
//! hosts, callback completions from processes, recovery requests) and
//! produces **actions** (failure announcements, resume commands, recovery
//! information). Determinism: events are applied in the order they commit
//! to the replicated log, and all timing decisions use the timestamps
//! carried in events plus the controller's tick time.
//!
//! Failure model implemented (matching the paper's evaluation):
//! * host / NIC / host-link failure → all processes on the host fail;
//! * ToR switch failure (single-homed racks) → every process in the rack
//!   fails;
//! * core or spine link/switch failure → connectivity survives, **no
//!   process fails**, and the controller only needs to issue Resume so the
//!   commit barrier stops waiting on the dead component.
//!
//! The *failure timestamp* of a component is the maximum last-commit
//! barrier reported by its live neighbors within the collection window —
//! the paper's cut rule specialised to tree topologies, where the
//! reporting neighbors always form a cut between the failed component and
//! every correct receiver.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use onepipe_types::ids::{NodeId, ProcessId};
use onepipe_types::time::Timestamp;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Identifies a physical failure domain (a host, a physical switch, ...).
pub type ComponentId = u32;

/// Static description of failure domains, provided by the deployment
/// harness (built from the routing topology).
#[derive(Clone, Debug, Default)]
pub struct FailureDomains {
    /// Which component each logical node belongs to.
    pub component_of: HashMap<NodeId, ComponentId>,
    /// The processes that die when a component dies (empty for fabric
    /// components whose loss does not disconnect any host).
    pub killed_procs: HashMap<ComponentId, Vec<ProcessId>>,
    /// Logical nodes making up each component (for Resume commands).
    pub nodes_of: HashMap<ComponentId, Vec<NodeId>>,
}

impl FailureDomains {
    /// Register a component with its nodes and the processes it kills.
    pub fn add_component(&mut self, id: ComponentId, nodes: Vec<NodeId>, killed: Vec<ProcessId>) {
        for &n in &nodes {
            self.component_of.insert(n, id);
        }
        self.killed_procs.insert(id, killed);
        self.nodes_of.insert(id, nodes);
    }
}

/// Events consumed by the controller (these are what gets written to the
/// replicated log).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CtrlEvent {
    /// A neighbor reported a dead node (Detect step). `last_commit` is the
    /// highest commit barrier the reporter observed from the dead node.
    Detect {
        /// Reporting node.
        reporter: NodeId,
        /// The silent node.
        dead: NodeId,
        /// Last commit barrier heard from it.
        last_commit: Timestamp,
        /// Report time.
        at: u64,
    },
    /// A process finished its failure callback (and any Recall work) for
    /// announcement `announce_id`.
    CallbackComplete {
        /// The announcement being acknowledged.
        announce_id: u64,
        /// The acknowledging process.
        from: ProcessId,
    },
    /// A sender could not deliver a Recall to a receiver; recorded so the
    /// receiver can discard consistently if it ever recovers (§5.2).
    UndeliverableRecall {
        /// The unreachable receiver.
        to: ProcessId,
        /// Scattering timestamp.
        ts: Timestamp,
        /// Scattering sequence number within its sender.
        seq: u64,
        /// The sender of the recalled scattering.
        sender: ProcessId,
    },
    /// A recovered process asks for the failure history it missed.
    RecoveryRequest {
        /// The recovering process.
        proc: ProcessId,
    },
    /// The leader's decision to close a Determine window and broadcast the
    /// failure. Putting the decision itself in the replicated log keeps
    /// every replica's state machine identical (followers never run the
    /// leader's timers).
    AnnounceDecision {
        /// The component whose failure is being announced.
        component: ComponentId,
    },
    /// Barrier entry a freshly elected leader writes to its log. Raft only
    /// commits current-term entries directly, so committing this entry is
    /// what commits (and surfaces) every surviving entry from prior terms;
    /// its application is the signal to re-drive in-flight recoveries.
    NewEpoch {
        /// The new leader's term.
        term: u64,
    },
}

/// Actions for the harness / management network to carry out.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CtrlAction {
    /// Broadcast step: tell a correct process about failed processes and
    /// their failure timestamps.
    Announce {
        /// Announcement id (to be echoed in `CallbackComplete`).
        id: u64,
        /// Recipient.
        to: ProcessId,
        /// Failed processes with their failure timestamps.
        failures: Vec<(ProcessId, Timestamp)>,
    },
    /// Resume step: the switch that reported a dead input link removes
    /// exactly that link from its commit-barrier aggregation. Scoping the
    /// removal to the *reported link* matters: a rack cut off by its
    /// uplinks sees every spine as dead, but the spines are healthy and
    /// still carry other pods' commit contributions — removing the spine
    /// node wholesale downstream would inflate the global commit barrier
    /// past live senders' pinned contributions (premature delivery).
    Resume {
        /// The switch that reported the dead link (removal site).
        at: NodeId,
        /// The input link to drop from commit aggregation.
        input: NodeId,
    },
    /// Reply to a `RecoveryRequest`.
    RecoveryInfo {
        /// The recovering process.
        to: ProcessId,
        /// All failure announcements so far (process, failure timestamp).
        failures: Vec<(ProcessId, Timestamp)>,
        /// Recalled scatterings addressed to `to` that could not be
        /// delivered: (sender, ts, seq).
        recalls: Vec<(ProcessId, Timestamp, u64)>,
    },
}

/// Where a [`CtrlAction`] must be delivered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ActionDest {
    /// Deliver to a process (host endpoint).
    Process(ProcessId),
    /// Deliver to the switch that reported the dead link.
    Switch(NodeId),
}

impl CtrlAction {
    /// The single routing rule shared by every transport (sim harness and
    /// UDP controller): Announce and RecoveryInfo go to a process,
    /// Resume goes to the reporting switch. Keeping this here means the
    /// transports cannot drift on recovery semantics.
    pub fn dest(&self) -> ActionDest {
        match self {
            CtrlAction::Announce { to, .. } => ActionDest::Process(*to),
            CtrlAction::RecoveryInfo { to, .. } => ActionDest::Process(*to),
            CtrlAction::Resume { at, .. } => ActionDest::Switch(*at),
        }
    }
}

/// A failure being processed (between Detect and Resume).
#[derive(Clone, Debug)]
pub struct PendingFailure {
    /// The failed component.
    pub component: ComponentId,
    /// Max last-commit over reports so far — the failure timestamp.
    pub failure_ts: Timestamp,
    /// When the first report arrived (starts the collection window).
    pub first_report_at: u64,
    /// Announcement id, once broadcast.
    pub announce_id: Option<u64>,
    /// Whether the leader has already proposed the announce decision
    /// (avoids duplicate log entries; reset implicitly on leader change).
    pub decision_proposed: bool,
    /// Processes that have completed their callbacks.
    pub completed: BTreeSet<ProcessId>,
    /// Processes whose completion we are waiting for.
    pub expected: BTreeSet<ProcessId>,
    /// Dead input links reported for this component: `(reporter, input)`.
    /// Resume removes exactly these links from commit aggregation.
    pub dead_links: BTreeSet<(NodeId, NodeId)>,
}

/// The controller state machine (runs on the Raft leader).
pub struct ControllerCore {
    domains: FailureDomains,
    /// Determine-step collection window (ns).
    pub determine_window: u64,
    correct: BTreeSet<ProcessId>,
    failed: BTreeMap<ProcessId, Timestamp>,
    pending: BTreeMap<ComponentId, PendingFailure>,
    next_announce_id: u64,
    /// Undeliverable recalls per receiver: (sender, ts, seq).
    recall_records: BTreeMap<ProcessId, Vec<(ProcessId, Timestamp, u64)>>,
    /// Links whose Resume has been emitted: `(reporter, input)`. Kept so a
    /// new leader can re-drive Resume after failover, and so duplicate
    /// Detect reports for an already-resumed link (at-least-once event
    /// delivery) cannot reopen a finished recovery.
    resumed: BTreeSet<(NodeId, NodeId)>,
}

impl ControllerCore {
    /// Create the controller over the given domains and process set.
    pub fn new(domains: FailureDomains, all_procs: impl IntoIterator<Item = ProcessId>) -> Self {
        ControllerCore {
            domains,
            determine_window: 10_000, // 10 µs: a few beacon timeouts
            correct: all_procs.into_iter().collect(),
            failed: BTreeMap::new(),
            pending: BTreeMap::new(),
            next_announce_id: 1,
            recall_records: BTreeMap::new(),
            resumed: BTreeSet::new(),
        }
    }

    /// Processes currently believed correct.
    pub fn correct_processes(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.correct.iter().copied()
    }

    /// All failures announced so far.
    pub fn failures(&self) -> impl Iterator<Item = (ProcessId, Timestamp)> + '_ {
        self.failed.iter().map(|(&p, &t)| (p, t))
    }

    /// Whether a failure is still being processed.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// In-flight failure handling state (telemetry / chaos triage).
    pub fn pending_failures(&self) -> impl Iterator<Item = &PendingFailure> + '_ {
        self.pending.values()
    }

    /// Apply one committed event at controller time `now`; returns actions.
    pub fn apply(&mut self, ev: CtrlEvent, now: u64) -> Vec<CtrlAction> {
        match ev {
            CtrlEvent::Detect { reporter, dead, last_commit, at } => {
                let Some(&comp) = self.domains.component_of.get(&dead) else {
                    return Vec::new();
                };
                // At-least-once event delivery: a duplicate report for a
                // link we already resumed is stale, not a new failure.
                if self.resumed.contains(&(reporter, dead)) {
                    return Vec::new();
                }
                let entry = self.pending.entry(comp).or_insert_with(|| PendingFailure {
                    component: comp,
                    failure_ts: Timestamp::ZERO,
                    first_report_at: at,
                    announce_id: None,
                    decision_proposed: false,
                    completed: BTreeSet::new(),
                    expected: BTreeSet::new(),
                    dead_links: BTreeSet::new(),
                });
                entry.dead_links.insert((reporter, dead));
                if entry.announce_id.is_none() {
                    entry.failure_ts = entry.failure_ts.max(last_commit);
                }
                self.tick(now)
            }
            CtrlEvent::AnnounceDecision { component } => {
                let mut actions = self.announce_component(component);
                actions.extend(self.finish_ready());
                actions
            }
            CtrlEvent::CallbackComplete { announce_id, from } => {
                for p in self.pending.values_mut() {
                    if p.announce_id == Some(announce_id) {
                        p.completed.insert(from);
                    }
                }
                self.finish_ready()
            }
            CtrlEvent::UndeliverableRecall { to, ts, seq, sender } => {
                let records = self.recall_records.entry(to).or_default();
                // Hosts retry this request until acknowledged; dedupe so a
                // re-delivered copy does not double-record the recall.
                if !records.contains(&(sender, ts, seq)) {
                    records.push((sender, ts, seq));
                }
                Vec::new()
            }
            CtrlEvent::RecoveryRequest { proc } => {
                vec![CtrlAction::RecoveryInfo {
                    to: proc,
                    failures: self.failed.iter().map(|(&p, &t)| (p, t)).collect(),
                    recalls: self.recall_records.get(&proc).cloned().unwrap_or_default(),
                }]
            }
            // Pure log barrier; state is untouched. The replication layer
            // reacts to its commitment (re-drive), not the state machine.
            CtrlEvent::NewEpoch { .. } => Vec::new(),
        }
    }

    /// Components whose Determine window expired and whose announce
    /// decision has not yet been proposed. A replicated deployment puts an
    /// [`CtrlEvent::AnnounceDecision`] in the log for each; a standalone
    /// deployment lets [`tick`](Self::tick) apply them directly.
    pub fn expired_windows(&self, now: u64) -> Vec<ComponentId> {
        self.pending
            .iter()
            .filter(|(_, p)| {
                p.announce_id.is_none()
                    && !p.decision_proposed
                    && now >= p.first_report_at + self.determine_window
            })
            .map(|(&c, _)| c)
            .collect()
    }

    /// Mark a component's announce decision as proposed (leader-side
    /// bookkeeping between proposal and commitment).
    pub fn mark_decision_proposed(&mut self, comp: ComponentId) {
        if let Some(p) = self.pending.get_mut(&comp) {
            p.decision_proposed = true;
        }
    }

    /// Close the Determine window of `comp`: record failures and emit the
    /// Broadcast actions. Idempotent — re-applying a committed decision
    /// (possible across leader changes) is a no-op.
    fn announce_component(&mut self, comp: ComponentId) -> Vec<CtrlAction> {
        let mut actions = Vec::new();
        let Some(p) = self.pending.get(&comp) else {
            return actions;
        };
        if p.announce_id.is_some() {
            return actions;
        }
        let killed: Vec<ProcessId> = self
            .domains
            .killed_procs
            .get(&comp)
            .cloned()
            .unwrap_or_default()
            .into_iter()
            .filter(|p| self.correct.contains(p))
            .collect();
        let p = self.pending.get_mut(&comp).unwrap();
        let failure_ts = p.failure_ts;
        if killed.is_empty() {
            // Fabric failure: nobody dies, no callbacks needed; go
            // straight to Resume (paper §7.2, "Failure recovery").
            p.announce_id = Some(0);
            p.expected.clear();
        } else {
            let id = self.next_announce_id;
            self.next_announce_id += 1;
            p.announce_id = Some(id);
            for k in &killed {
                self.correct.remove(k);
                self.failed.insert(*k, failure_ts);
            }
            p.expected = self.correct.iter().copied().collect();
            let failures: Vec<(ProcessId, Timestamp)> =
                killed.iter().map(|&k| (k, failure_ts)).collect();
            for &proc in &self.correct {
                actions.push(CtrlAction::Announce { id, to: proc, failures: failures.clone() });
            }
        }
        // A process that has just failed can never complete callbacks for
        // earlier failures; drop it from every pending expectation.
        let correct = self.correct.clone();
        for pending in self.pending.values_mut() {
            pending.expected.retain(|x| correct.contains(x));
        }
        actions
    }

    /// Advance the controller clock (standalone deployment): close expired
    /// Determine windows directly and emit Broadcast / Resume actions.
    pub fn tick(&mut self, now: u64) -> Vec<CtrlAction> {
        let mut actions = Vec::new();
        for comp in self.expired_windows(now) {
            actions.extend(self.announce_component(comp));
        }
        actions.extend(self.finish_ready());
        actions
    }

    /// Emit Resume for every pending failure whose callbacks are all in.
    fn finish_ready(&mut self) -> Vec<CtrlAction> {
        let mut actions = Vec::new();
        let ready: Vec<ComponentId> = self
            .pending
            .iter()
            .filter(|(_, p)| p.announce_id.is_some() && p.expected.is_subset(&p.completed))
            .map(|(&c, _)| c)
            .collect();
        for comp in ready {
            let p = self.pending.remove(&comp).unwrap();
            for (at, input) in p.dead_links {
                self.resumed.insert((at, input));
                actions.push(CtrlAction::Resume { at, input });
            }
        }
        actions
    }

    /// Clear leader-side "decision already proposed" bookkeeping. A new
    /// leader must call this on election: the flag lives outside the
    /// replicated log, so it reflects the *previous* leader's proposals —
    /// some of which may have died with it. Re-proposing is safe because
    /// [`announce_component`](Self::apply) is idempotent.
    pub fn reset_decision_proposals(&mut self) {
        for p in self.pending.values_mut() {
            p.decision_proposed = false;
        }
    }

    /// Actions a freshly elected leader must re-issue to guarantee every
    /// in-flight recovery makes progress (exactly-once is enforced at the
    /// receivers, which dedupe by announcement id / resumed link):
    /// * re-Announce every announced-but-unfinished failure to the
    ///   processes that have not completed their callbacks, and
    /// * re-send every Resume recorded in the log's history, in case the
    ///   old leader committed the final callback but crashed before the
    ///   Resume action left the building.
    pub fn redrive_actions(&self) -> Vec<CtrlAction> {
        let mut actions = Vec::new();
        for p in self.pending.values() {
            let Some(id) = p.announce_id else { continue };
            if id == 0 {
                continue; // fabric failure: no announcement was sent
            }
            let failures: Vec<(ProcessId, Timestamp)> = self
                .domains
                .killed_procs
                .get(&p.component)
                .map(|ks| ks.iter().filter_map(|k| self.failed.get(k).map(|&t| (*k, t))).collect())
                .unwrap_or_default();
            for &proc in p.expected.difference(&p.completed) {
                actions.push(CtrlAction::Announce { id, to: proc, failures: failures.clone() });
            }
        }
        for &(at, input) in &self.resumed {
            actions.push(CtrlAction::Resume { at, input });
        }
        actions
    }
}

// ---------------------------------------------------------------------------
// Wire codec for CtrlEvent (used as the Raft log entry payload).
// ---------------------------------------------------------------------------

impl CtrlEvent {
    /// Serialize to bytes for the replicated log.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::new();
        match self {
            CtrlEvent::Detect { reporter, dead, last_commit, at } => {
                b.put_u8(0);
                b.put_u32(reporter.0);
                b.put_u32(dead.0);
                b.put_uint(last_commit.raw(), 6);
                b.put_u64(*at);
            }
            CtrlEvent::CallbackComplete { announce_id, from } => {
                b.put_u8(1);
                b.put_u64(*announce_id);
                b.put_u32(from.0);
            }
            CtrlEvent::UndeliverableRecall { to, ts, seq, sender } => {
                b.put_u8(2);
                b.put_u32(to.0);
                b.put_uint(ts.raw(), 6);
                b.put_u64(*seq);
                b.put_u32(sender.0);
            }
            CtrlEvent::RecoveryRequest { proc } => {
                b.put_u8(3);
                b.put_u32(proc.0);
            }
            CtrlEvent::AnnounceDecision { component } => {
                b.put_u8(4);
                b.put_u32(*component);
            }
            CtrlEvent::NewEpoch { term } => {
                b.put_u8(5);
                b.put_u64(*term);
            }
        }
        b.freeze()
    }

    /// Decode from bytes written by [`encode`](Self::encode).
    pub fn decode(mut buf: Bytes) -> onepipe_types::Result<Self> {
        use onepipe_types::Error;
        if buf.remaining() < 1 {
            return Err(Error::Truncated { needed: 1, got: 0 });
        }
        let tag = buf.get_u8();
        let need = |buf: &Bytes, n: usize| -> onepipe_types::Result<()> {
            if buf.remaining() < n {
                Err(Error::Truncated { needed: n, got: buf.remaining() })
            } else {
                Ok(())
            }
        };
        Ok(match tag {
            0 => {
                need(&buf, 4 + 4 + 6 + 8)?;
                CtrlEvent::Detect {
                    reporter: NodeId(buf.get_u32()),
                    dead: NodeId(buf.get_u32()),
                    last_commit: Timestamp::from_raw(buf.get_uint(6)),
                    at: buf.get_u64(),
                }
            }
            1 => {
                need(&buf, 8 + 4)?;
                CtrlEvent::CallbackComplete {
                    announce_id: buf.get_u64(),
                    from: ProcessId(buf.get_u32()),
                }
            }
            2 => {
                need(&buf, 4 + 6 + 8 + 4)?;
                CtrlEvent::UndeliverableRecall {
                    to: ProcessId(buf.get_u32()),
                    ts: Timestamp::from_raw(buf.get_uint(6)),
                    seq: buf.get_u64(),
                    sender: ProcessId(buf.get_u32()),
                }
            }
            3 => {
                need(&buf, 4)?;
                CtrlEvent::RecoveryRequest { proc: ProcessId(buf.get_u32()) }
            }
            4 => {
                need(&buf, 4)?;
                CtrlEvent::AnnounceDecision { component: buf.get_u32() }
            }
            5 => {
                need(&buf, 8)?;
                CtrlEvent::NewEpoch { term: buf.get_u64() }
            }
            other => return Err(Error::BadOpcode(other)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: u64) -> Timestamp {
        Timestamp::from_nanos(v)
    }

    /// 2 hosts (nodes 0,1) with procs 0,1 — plus a fabric node 10.
    fn domains() -> FailureDomains {
        let mut d = FailureDomains::default();
        d.add_component(0, vec![NodeId(0)], vec![ProcessId(0)]);
        d.add_component(1, vec![NodeId(1)], vec![ProcessId(1)]);
        d.add_component(2, vec![NodeId(10)], vec![]); // core switch
        d
    }

    fn core() -> ControllerCore {
        ControllerCore::new(domains(), [ProcessId(0), ProcessId(1), ProcessId(2)])
    }

    #[test]
    fn host_failure_full_sequence() {
        let mut c = core();
        // Detect at t=0; window is 10 µs.
        let a = c.apply(
            CtrlEvent::Detect { reporter: NodeId(5), dead: NodeId(0), last_commit: ts(100), at: 0 },
            0,
        );
        assert!(a.is_empty(), "must wait out the determine window");
        // A second report raises the failure timestamp.
        c.apply(
            CtrlEvent::Detect {
                reporter: NodeId(6),
                dead: NodeId(0),
                last_commit: ts(150),
                at: 1_000,
            },
            1_000,
        );
        // Window closes: announce to the two correct processes.
        let a = c.tick(10_000);
        let announces: Vec<_> = a
            .iter()
            .filter_map(|x| match x {
                CtrlAction::Announce { id, to, failures } => Some((*id, *to, failures.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(announces.len(), 2);
        for (_, _, fails) in &announces {
            assert_eq!(fails, &vec![(ProcessId(0), ts(150))]);
        }
        let id = announces[0].0;
        // One completion: not yet resumed.
        let a =
            c.apply(CtrlEvent::CallbackComplete { announce_id: id, from: ProcessId(1) }, 11_000);
        assert!(a.is_empty());
        // Second completion: Resume fires for each reported dead link.
        let a =
            c.apply(CtrlEvent::CallbackComplete { announce_id: id, from: ProcessId(2) }, 12_000);
        assert_eq!(
            a,
            vec![
                CtrlAction::Resume { at: NodeId(5), input: NodeId(0) },
                CtrlAction::Resume { at: NodeId(6), input: NodeId(0) },
            ]
        );
        assert!(!c.has_pending());
        assert_eq!(c.failures().collect::<Vec<_>>(), vec![(ProcessId(0), ts(150))]);
    }

    #[test]
    fn fabric_failure_resumes_without_announcement() {
        let mut c = core();
        c.apply(
            CtrlEvent::Detect { reporter: NodeId(5), dead: NodeId(10), last_commit: ts(42), at: 0 },
            0,
        );
        let a = c.tick(10_000);
        assert_eq!(a, vec![CtrlAction::Resume { at: NodeId(5), input: NodeId(10) }]);
        // Nobody failed.
        assert_eq!(c.failures().count(), 0);
        assert_eq!(c.correct_processes().count(), 3);
    }

    #[test]
    fn unknown_node_ignored() {
        let mut c = core();
        let a = c.apply(
            CtrlEvent::Detect { reporter: NodeId(5), dead: NodeId(99), last_commit: ts(1), at: 0 },
            0,
        );
        assert!(a.is_empty());
        assert!(!c.has_pending());
    }

    #[test]
    fn late_reports_do_not_raise_announced_failure_ts() {
        let mut c = core();
        c.apply(
            CtrlEvent::Detect { reporter: NodeId(5), dead: NodeId(0), last_commit: ts(100), at: 0 },
            0,
        );
        c.tick(10_000); // announced with ts=100
        c.apply(
            CtrlEvent::Detect {
                reporter: NodeId(7),
                dead: NodeId(0),
                last_commit: ts(999),
                at: 20_000,
            },
            20_000,
        );
        assert_eq!(c.failures().collect::<Vec<_>>(), vec![(ProcessId(0), ts(100))]);
    }

    #[test]
    fn recovery_request_returns_history_and_recalls() {
        let mut c = core();
        c.apply(
            CtrlEvent::Detect { reporter: NodeId(5), dead: NodeId(0), last_commit: ts(77), at: 0 },
            0,
        );
        c.tick(10_000);
        c.apply(
            CtrlEvent::UndeliverableRecall {
                to: ProcessId(0),
                ts: ts(500),
                seq: 3,
                sender: ProcessId(1),
            },
            11_000,
        );
        let a = c.apply(CtrlEvent::RecoveryRequest { proc: ProcessId(0) }, 12_000);
        assert_eq!(
            a,
            vec![CtrlAction::RecoveryInfo {
                to: ProcessId(0),
                failures: vec![(ProcessId(0), ts(77))],
                recalls: vec![(ProcessId(1), ts(500), 3)],
            }]
        );
    }

    #[test]
    fn double_failure_handled_independently() {
        let mut c = core();
        c.apply(
            CtrlEvent::Detect { reporter: NodeId(5), dead: NodeId(0), last_commit: ts(10), at: 0 },
            0,
        );
        c.apply(
            CtrlEvent::Detect { reporter: NodeId(5), dead: NodeId(1), last_commit: ts(20), at: 0 },
            0,
        );
        let a = c.tick(10_000);
        // Component 0 announces to {p1, p2} (p1 not yet processed), then
        // component 1 announces to {p2}: three announcements total, and the
        // now-failed p1 is dropped from every pending expectation so the
        // protocol cannot deadlock waiting for a dead process.
        let announce_count = a.iter().filter(|x| matches!(x, CtrlAction::Announce { .. })).count();
        assert_eq!(announce_count, 3);
        assert_eq!(c.correct_processes().collect::<Vec<_>>(), vec![ProcessId(2)]);
        // p2's completions alone must now finish both failures.
        let mut resumes = Vec::new();
        for id in [1u64, 2u64] {
            resumes.extend(c.apply(
                CtrlEvent::CallbackComplete { announce_id: id, from: ProcessId(2) },
                20_000,
            ));
        }
        assert_eq!(resumes.iter().filter(|a| matches!(a, CtrlAction::Resume { .. })).count(), 2);
        assert!(!c.has_pending());
    }

    #[test]
    fn redrive_reannounces_only_to_incomplete_processes() {
        let mut c = core();
        c.apply(
            CtrlEvent::Detect { reporter: NodeId(5), dead: NodeId(0), last_commit: ts(100), at: 0 },
            0,
        );
        let a = c.tick(10_000);
        let id = a
            .iter()
            .find_map(|x| match x {
                CtrlAction::Announce { id, .. } => Some(*id),
                _ => None,
            })
            .unwrap();
        c.apply(CtrlEvent::CallbackComplete { announce_id: id, from: ProcessId(1) }, 11_000);
        // A new leader re-drives: only p2 (incomplete) gets re-announced.
        let redrive = c.redrive_actions();
        assert_eq!(
            redrive,
            vec![CtrlAction::Announce {
                id,
                to: ProcessId(2),
                failures: vec![(ProcessId(0), ts(100))],
            }]
        );
        // Once finished, re-drive re-sends the recorded Resumes instead.
        c.apply(CtrlEvent::CallbackComplete { announce_id: id, from: ProcessId(2) }, 12_000);
        assert_eq!(
            c.redrive_actions(),
            vec![CtrlAction::Resume { at: NodeId(5), input: NodeId(0) }]
        );
    }

    #[test]
    fn duplicate_detect_after_resume_is_ignored() {
        let mut c = core();
        let detect =
            CtrlEvent::Detect { reporter: NodeId(5), dead: NodeId(10), last_commit: ts(42), at: 0 };
        c.apply(detect.clone(), 0);
        let a = c.tick(10_000);
        assert_eq!(a.len(), 1, "fabric failure resumes immediately");
        // A retried copy of the same report must not reopen the recovery
        // (that would emit a second Resume for the same link).
        let a = c.apply(detect, 20_000);
        assert!(a.is_empty());
        assert!(!c.has_pending());
    }

    #[test]
    fn duplicate_undeliverable_recall_recorded_once() {
        let mut c = core();
        let ev = CtrlEvent::UndeliverableRecall {
            to: ProcessId(0),
            ts: ts(500),
            seq: 3,
            sender: ProcessId(1),
        };
        c.apply(ev.clone(), 0);
        c.apply(ev, 1_000);
        let a = c.apply(CtrlEvent::RecoveryRequest { proc: ProcessId(0) }, 2_000);
        match &a[0] {
            CtrlAction::RecoveryInfo { recalls, .. } => assert_eq!(recalls.len(), 1),
            other => panic!("expected RecoveryInfo, got {other:?}"),
        }
    }

    #[test]
    fn reset_decision_proposals_allows_reproposal() {
        let mut c = core();
        c.apply(
            CtrlEvent::Detect { reporter: NodeId(5), dead: NodeId(0), last_commit: ts(1), at: 0 },
            0,
        );
        c.mark_decision_proposed(0);
        assert!(c.expired_windows(10_000).is_empty(), "proposed decisions are not re-offered");
        // Leader change: the proposal may have died with the old leader.
        c.reset_decision_proposals();
        assert_eq!(c.expired_windows(10_000), vec![0]);
    }

    #[test]
    fn event_codec_roundtrip() {
        let events = vec![
            CtrlEvent::Detect {
                reporter: NodeId(1),
                dead: NodeId(2),
                last_commit: ts(123_456),
                at: 789,
            },
            CtrlEvent::CallbackComplete { announce_id: 9, from: ProcessId(3) },
            CtrlEvent::UndeliverableRecall {
                to: ProcessId(4),
                ts: ts(55),
                seq: 6,
                sender: ProcessId(7),
            },
            CtrlEvent::RecoveryRequest { proc: ProcessId(8) },
            CtrlEvent::AnnounceDecision { component: 11 },
            CtrlEvent::NewEpoch { term: 12 },
        ];
        for ev in events {
            let encoded = ev.encode();
            let decoded = CtrlEvent::decode(encoded).unwrap();
            assert_eq!(decoded, ev);
        }
    }

    #[test]
    fn codec_rejects_garbage() {
        assert!(CtrlEvent::decode(Bytes::new()).is_err());
        assert!(CtrlEvent::decode(Bytes::from_static(&[9, 0, 0])).is_err());
        assert!(CtrlEvent::decode(Bytes::from_static(&[0, 1])).is_err());
    }
}
