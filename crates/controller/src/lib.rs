//! The highly-available network controller of reliable 1Pipe (§5.2).
//!
//! The paper relies on an SDN-style controller that is "replicated using
//! Paxos or Raft, so it is highly available, and only one controller is
//! active at any time", storing its state in etcd. This crate provides
//! both halves:
//!
//! * [`raft`] — a compact Raft implementation (leader election, log
//!   replication, commitment) used to replicate controller decisions;
//! * [`protocol`] — the failure-recovery state machine that executes the
//!   paper's Detect → Determine → Broadcast → Discard/Recall → Callback →
//!   Resume sequence (Figure 7), plus the message-forwarding fallback and
//!   receiver-recovery records;
//! * [`wire`] — the management-plane framing ([`MgmtFrame`]) that carries
//!   events, actions, and forwarded datagrams over a real transport (the
//!   UDP backend's control plane).
//!
//! Both are sans-io: they consume messages/ticks and emit actions, which a
//! harness (the simulator, or a real management network) delivers.

#![warn(missing_docs)]

pub mod protocol;
pub mod raft;
pub mod replicated;
pub mod wire;

pub use protocol::{
    ComponentId, ControllerCore, CtrlAction, CtrlEvent, FailureDomains, PendingFailure,
};
pub use raft::{RaftConfig, RaftMsg, RaftNode, RaftRole};
pub use replicated::ReplicatedController;
pub use wire::MgmtFrame;
