//! The highly-available network controller of reliable 1Pipe (§5.2).
//!
//! The paper relies on an SDN-style controller that is "replicated using
//! Paxos or Raft, so it is highly available, and only one controller is
//! active at any time". This crate provides the whole replicated
//! deployment, sans-io:
//!
//! * [`raft`] — a compact Raft implementation (leader election, log
//!   replication, commitment) replicating controller decisions;
//! * [`protocol`] — the failure-recovery state machine executing the
//!   paper's Detect → Determine → Broadcast → Discard/Recall → Callback →
//!   Resume sequence (Figure 7), plus the message-forwarding fallback and
//!   receiver-recovery records;
//! * [`replicated`] — the glue: every replica applies the committed event
//!   log to an identical state machine, only the Raft leader emits
//!   actions, and a freshly elected leader *re-drives* in-flight
//!   recoveries (re-Announce to incomplete processes, re-Resume recorded
//!   links) rather than restarting them;
//! * [`wire`] — management-plane framing ([`MgmtFrame`]): events, epoch-
//!   tagged actions, Raft traffic, the host retry protocol
//!   (Req/Ack/Redirect), and forwarded datagrams;
//! * [`retry`] — the capped-exponential-backoff policy hosts use for
//!   control requests (bounded attempts, no silent drop).
//!
//! # Epochs and fencing
//!
//! Every [`CtrlAction`] leaves the controller tagged with the emitting
//! leader's Raft term — its **epoch**. Receivers keep the highest epoch
//! seen and drop actions from lower epochs, fencing off a deposed leader
//! that has not yet noticed its demotion. Within one epoch the leader
//! emits each action at most once; across epochs, receivers deduplicate
//! (endpoints by announcement id, switches by already-removed input), so
//! failover re-drives are *at-least-once on the wire, exactly-once in
//! effect*.
//!
//! # Degradation contract under controller outage
//!
//! The controller sits only on the recovery path. While no quorum (or no
//! leader) exists, best-effort traffic keeps flowing — beacons and the
//! data path never touch the controller — but recovery stalls, so
//! reliable sends that need a failed component Resumed stall with it.
//! Once a leader is (re-)elected, retried reports and requests drain into
//! the new log and recovery completes. Clients must therefore retry
//! ([`RetryPolicy`]) instead of fire-and-forget.

#![warn(missing_docs)]

pub mod protocol;
pub mod raft;
pub mod replicated;
pub mod retry;
pub mod wire;

pub use protocol::{
    ActionDest, ComponentId, ControllerCore, CtrlAction, CtrlEvent, FailureDomains, PendingFailure,
};
pub use raft::{RaftConfig, RaftMsg, RaftNode, RaftRole};
pub use replicated::ReplicatedController;
pub use retry::RetryPolicy;
pub use wire::MgmtFrame;
