//! A compact Raft implementation for controller replication.
//!
//! Implements the core of the Raft consensus algorithm (Ongaro &
//! Ousterhout, ATC'14 — reference \[80\] of the paper): randomized leader
//! election, log replication and quorum commitment. Omissions relative to
//! full Raft, acceptable for a controller whose membership is fixed at
//! deployment: no membership changes, no snapshots/compaction, no
//! persistence (a restarted replica rejoins empty, which is safe as long
//! as a quorum of the original members stays up).
//!
//! The node is sans-io: [`RaftNode::tick`] and [`RaftNode::on_message`]
//! return `(peer, message)` pairs for the harness to deliver.

/// Role of a replica.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RaftRole {
    /// Follows a leader; becomes candidate on election timeout.
    Follower,
    /// Campaigning for leadership.
    Candidate,
    /// The active replica; the 1Pipe controller logic runs here.
    Leader,
}

/// One replicated log entry (opaque command bytes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogEntry {
    /// Term in which the entry was appended.
    pub term: u64,
    /// Opaque command (the controller serializes [`CtrlEvent`]s here).
    ///
    /// [`CtrlEvent`]: crate::protocol::CtrlEvent
    pub data: Vec<u8>,
}

/// Raft wire messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RaftMsg {
    /// Candidate requesting a vote.
    RequestVote {
        /// Candidate's term.
        term: u64,
        /// Index of candidate's last log entry.
        last_log_index: u64,
        /// Term of candidate's last log entry.
        last_log_term: u64,
    },
    /// Vote response.
    Vote {
        /// Voter's current term.
        term: u64,
        /// Whether the vote was granted.
        granted: bool,
    },
    /// Log replication / heartbeat.
    Append {
        /// Leader's term.
        term: u64,
        /// Index of the entry preceding `entries`.
        prev_log_index: u64,
        /// Term of that entry.
        prev_log_term: u64,
        /// New entries (empty for heartbeat).
        entries: Vec<LogEntry>,
        /// Leader's commit index.
        leader_commit: u64,
    },
    /// Replication response.
    AppendResp {
        /// Follower's term.
        term: u64,
        /// Whether the append matched.
        ok: bool,
        /// Highest log index stored on the follower (valid when `ok`).
        match_index: u64,
    },
}

/// Timing configuration (nanoseconds).
#[derive(Clone, Copy, Debug)]
pub struct RaftConfig {
    /// Base election timeout; each replica adds a deterministic stagger.
    pub election_timeout: u64,
    /// Leader heartbeat interval (must be ≪ election timeout).
    pub heartbeat_interval: u64,
}

impl Default for RaftConfig {
    fn default() -> Self {
        // Management networks are millisecond-scale; these defaults keep
        // failover around 10-20 ms of simulated time.
        RaftConfig { election_timeout: 5_000_000, heartbeat_interval: 1_000_000 }
    }
}

/// A single Raft replica.
pub struct RaftNode {
    id: u32,
    peers: Vec<u32>,
    cfg: RaftConfig,
    role: RaftRole,
    term: u64,
    voted_for: Option<u32>,
    log: Vec<LogEntry>,
    commit_index: u64,
    applied_index: u64,
    votes: usize,
    /// Leader state: next index to send to each peer.
    next_index: Vec<u64>,
    /// Leader state: highest replicated index on each peer.
    match_index: Vec<u64>,
    election_deadline: u64,
    heartbeat_due: u64,
    /// Last replica observed acting as leader for the current term (self
    /// when leading). Used to redirect clients; cleared on term changes.
    leader_hint: Option<u32>,
}

impl RaftNode {
    /// Create replica `id` in a cluster with the given peers (excluding
    /// itself).
    pub fn new(id: u32, peers: Vec<u32>, cfg: RaftConfig) -> Self {
        let n = peers.len();
        let mut node = RaftNode {
            id,
            peers,
            cfg,
            role: RaftRole::Follower,
            term: 0,
            voted_for: None,
            log: Vec::new(),
            commit_index: 0,
            applied_index: 0,
            votes: 0,
            next_index: vec![1; n],
            match_index: vec![0; n],
            election_deadline: 0,
            heartbeat_due: 0,
            leader_hint: None,
        };
        node.reset_election_deadline(0);
        node
    }

    /// Replica id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Current role.
    pub fn role(&self) -> RaftRole {
        self.role
    }

    /// Current term.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// Whether this replica currently believes it is the leader.
    pub fn is_leader(&self) -> bool {
        self.role == RaftRole::Leader
    }

    /// Committed log length.
    pub fn commit_index(&self) -> u64 {
        self.commit_index
    }

    /// Index of the last log entry (committed or not).
    pub fn last_log_index(&self) -> u64 {
        self.log.len() as u64
    }

    /// The replica last seen acting as leader for the current term, if
    /// any — self when leading. Clients use this to find the leader.
    pub fn leader_hint(&self) -> Option<u32> {
        self.leader_hint
    }

    /// Deterministic per-replica election stagger: replica ids spread
    /// their timeouts so elections rarely collide (a substitute for the
    /// randomized timeout of full Raft that keeps the simulation
    /// reproducible).
    fn stagger(&self) -> u64 {
        (self.id as u64 + 1) * (self.cfg.election_timeout / 4)
    }

    fn reset_election_deadline(&mut self, now: u64) {
        self.election_deadline = now + self.cfg.election_timeout + self.stagger();
    }

    fn last_log_term(&self) -> u64 {
        self.log.last().map(|e| e.term).unwrap_or(0)
    }

    fn term_at(&self, index: u64) -> u64 {
        if index == 0 {
            0
        } else {
            self.log[(index - 1) as usize].term
        }
    }

    fn become_follower(&mut self, term: u64, now: u64) {
        if term != self.term {
            self.leader_hint = None;
        }
        self.term = term;
        self.role = RaftRole::Follower;
        self.voted_for = None;
        self.reset_election_deadline(now);
    }

    fn quorum(&self) -> usize {
        self.peers.len().div_ceil(2) + 1
    }

    /// Propose a command. Only valid on the leader; returns `false` (and
    /// drops the command) otherwise.
    pub fn propose(&mut self, data: Vec<u8>) -> bool {
        if self.role != RaftRole::Leader {
            return false;
        }
        self.log.push(LogEntry { term: self.term, data });
        // Single-node cluster commits immediately.
        if self.peers.is_empty() {
            self.commit_index = self.last_log_index();
        }
        true
    }

    /// Entries committed since the last call (in order).
    pub fn take_committed(&mut self) -> Vec<LogEntry> {
        let mut out = Vec::new();
        while self.applied_index < self.commit_index {
            out.push(self.log[self.applied_index as usize].clone());
            self.applied_index += 1;
        }
        out
    }

    /// Advance time; returns messages to deliver.
    pub fn tick(&mut self, now: u64) -> Vec<(u32, RaftMsg)> {
        let mut out = Vec::new();
        match self.role {
            RaftRole::Leader => {
                if now >= self.heartbeat_due {
                    self.heartbeat_due = now + self.cfg.heartbeat_interval;
                    for i in 0..self.peers.len() {
                        out.push((self.peers[i], self.append_for(i)));
                    }
                }
            }
            RaftRole::Follower | RaftRole::Candidate => {
                if now >= self.election_deadline {
                    self.term += 1;
                    self.role = RaftRole::Candidate;
                    self.voted_for = Some(self.id);
                    self.leader_hint = None;
                    self.votes = 1;
                    self.reset_election_deadline(now);
                    if self.votes >= self.quorum() {
                        self.become_leader(now, &mut out);
                    } else {
                        for &p in &self.peers {
                            out.push((
                                p,
                                RaftMsg::RequestVote {
                                    term: self.term,
                                    last_log_index: self.last_log_index(),
                                    last_log_term: self.last_log_term(),
                                },
                            ));
                        }
                    }
                }
            }
        }
        out
    }

    fn become_leader(&mut self, now: u64, out: &mut Vec<(u32, RaftMsg)>) {
        self.role = RaftRole::Leader;
        self.leader_hint = Some(self.id);
        self.heartbeat_due = now + self.cfg.heartbeat_interval;
        let next = self.last_log_index() + 1;
        for i in 0..self.peers.len() {
            self.next_index[i] = next;
            self.match_index[i] = 0;
        }
        for i in 0..self.peers.len() {
            out.push((self.peers[i], self.append_for(i)));
        }
    }

    fn append_for(&self, peer_idx: usize) -> RaftMsg {
        let next = self.next_index[peer_idx];
        let prev_log_index = next - 1;
        let prev_log_term = self.term_at(prev_log_index);
        let entries = self.log[(next - 1) as usize..].to_vec();
        RaftMsg::Append {
            term: self.term,
            prev_log_index,
            prev_log_term,
            entries,
            leader_commit: self.commit_index,
        }
    }

    /// Handle a message from `from`; returns messages to deliver.
    pub fn on_message(&mut self, from: u32, msg: RaftMsg, now: u64) -> Vec<(u32, RaftMsg)> {
        let mut out = Vec::new();
        match msg {
            RaftMsg::RequestVote { term, last_log_index, last_log_term } => {
                if term > self.term {
                    self.become_follower(term, now);
                }
                let log_ok = (last_log_term, last_log_index)
                    >= (self.last_log_term(), self.last_log_index());
                let granted = term == self.term
                    && log_ok
                    && (self.voted_for.is_none() || self.voted_for == Some(from));
                if granted {
                    self.voted_for = Some(from);
                    self.reset_election_deadline(now);
                }
                out.push((from, RaftMsg::Vote { term: self.term, granted }));
            }
            RaftMsg::Vote { term, granted } => {
                if term > self.term {
                    self.become_follower(term, now);
                } else if self.role == RaftRole::Candidate && term == self.term && granted {
                    self.votes += 1;
                    if self.votes >= self.quorum() {
                        self.become_leader(now, &mut out);
                    }
                }
            }
            RaftMsg::Append { term, prev_log_index, prev_log_term, entries, leader_commit } => {
                if term > self.term || (term == self.term && self.role == RaftRole::Candidate) {
                    self.become_follower(term, now);
                }
                if term < self.term {
                    out.push((
                        from,
                        RaftMsg::AppendResp { term: self.term, ok: false, match_index: 0 },
                    ));
                    return out;
                }
                self.leader_hint = Some(from);
                self.reset_election_deadline(now);
                // Consistency check.
                if prev_log_index > self.last_log_index()
                    || (prev_log_index > 0 && self.term_at(prev_log_index) != prev_log_term)
                {
                    out.push((
                        from,
                        RaftMsg::AppendResp { term: self.term, ok: false, match_index: 0 },
                    ));
                    return out;
                }
                // Append, truncating any conflicting suffix.
                let mut idx = prev_log_index;
                for e in entries {
                    idx += 1;
                    if (idx as usize) <= self.log.len() {
                        if self.log[(idx - 1) as usize].term != e.term {
                            self.log.truncate((idx - 1) as usize);
                            self.log.push(e);
                        }
                    } else {
                        self.log.push(e);
                    }
                }
                if leader_commit > self.commit_index {
                    self.commit_index = leader_commit.min(self.last_log_index());
                }
                out.push((
                    from,
                    RaftMsg::AppendResp {
                        term: self.term,
                        ok: true,
                        match_index: self.last_log_index(),
                    },
                ));
            }
            RaftMsg::AppendResp { term, ok, match_index } => {
                if term > self.term {
                    self.become_follower(term, now);
                    return out;
                }
                if self.role != RaftRole::Leader || term < self.term {
                    return out;
                }
                let Some(i) = self.peers.iter().position(|&p| p == from) else {
                    return out;
                };
                if ok {
                    self.match_index[i] = self.match_index[i].max(match_index);
                    self.next_index[i] = self.match_index[i] + 1;
                    self.advance_commit();
                } else {
                    self.next_index[i] = self.next_index[i].saturating_sub(1).max(1);
                    out.push((from, self.append_for(i)));
                }
            }
        }
        out
    }

    /// Leader: advance commit index to the highest quorum-replicated entry
    /// of the current term.
    fn advance_commit(&mut self) {
        for n in ((self.commit_index + 1)..=self.last_log_index()).rev() {
            if self.term_at(n) != self.term {
                continue;
            }
            let replicas = 1 + self.match_index.iter().filter(|&&m| m >= n).count();
            if replicas >= self.quorum() {
                self.commit_index = n;
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// A toy synchronous network of Raft replicas with controllable
    /// partitions.
    struct Cluster {
        nodes: Vec<RaftNode>,
        inflight: VecDeque<(u32, u32, RaftMsg)>,
        blocked: Vec<bool>,
        now: u64,
    }

    impl Cluster {
        fn new(n: u32) -> Self {
            let cfg = RaftConfig { election_timeout: 1_000, heartbeat_interval: 200 };
            let nodes = (0..n)
                .map(|i| {
                    let peers = (0..n).filter(|&p| p != i).collect();
                    RaftNode::new(i, peers, cfg)
                })
                .collect();
            Cluster { nodes, inflight: VecDeque::new(), blocked: vec![false; n as usize], now: 0 }
        }

        /// Advance time by `dt`, delivering all messages synchronously.
        fn run(&mut self, dt: u64, step: u64) {
            let end = self.now + dt;
            while self.now < end {
                self.now += step;
                for i in 0..self.nodes.len() {
                    if self.blocked[i] {
                        continue;
                    }
                    for (to, msg) in self.nodes[i].tick(self.now) {
                        self.inflight.push_back((i as u32, to, msg));
                    }
                }
                while let Some((from, to, msg)) = self.inflight.pop_front() {
                    if self.blocked[from as usize] || self.blocked[to as usize] {
                        continue;
                    }
                    let replies = self.nodes[to as usize].on_message(from, msg, self.now);
                    for (rt, rm) in replies {
                        self.inflight.push_back((to, rt, rm));
                    }
                }
            }
        }

        fn leaders(&self) -> Vec<u32> {
            self.nodes
                .iter()
                .enumerate()
                .filter(|(i, n)| n.is_leader() && !self.blocked[*i])
                .map(|(i, _)| i as u32)
                .collect()
        }
    }

    #[test]
    fn single_node_self_elects_and_commits() {
        let mut c = Cluster::new(1);
        c.run(5_000, 100);
        assert_eq!(c.leaders(), vec![0]);
        assert!(c.nodes[0].propose(b"x".to_vec()));
        assert_eq!(c.nodes[0].take_committed().len(), 1);
    }

    #[test]
    fn three_nodes_elect_exactly_one_leader() {
        let mut c = Cluster::new(3);
        c.run(10_000, 100);
        assert_eq!(c.leaders().len(), 1);
    }

    #[test]
    fn log_replicates_to_quorum_and_commits_everywhere() {
        let mut c = Cluster::new(3);
        c.run(10_000, 100);
        let leader = c.leaders()[0] as usize;
        assert!(c.nodes[leader].propose(b"cmd1".to_vec()));
        assert!(c.nodes[leader].propose(b"cmd2".to_vec()));
        c.run(2_000, 100);
        for n in &mut c.nodes {
            let committed = n.take_committed();
            assert_eq!(committed.len(), 2, "replica {} missing entries", n.id());
            assert_eq!(committed[0].data, b"cmd1");
            assert_eq!(committed[1].data, b"cmd2");
        }
    }

    #[test]
    fn leader_failure_triggers_failover() {
        let mut c = Cluster::new(3);
        c.run(10_000, 100);
        let old = c.leaders()[0];
        c.blocked[old as usize] = true;
        c.run(20_000, 100);
        let new_leaders = c.leaders();
        assert_eq!(new_leaders.len(), 1);
        assert_ne!(new_leaders[0], old);
        // Old leader steps down when it rejoins.
        c.blocked[old as usize] = false;
        c.run(10_000, 100);
        assert_eq!(c.leaders().len(), 1);
    }

    #[test]
    fn committed_entries_survive_failover() {
        let mut c = Cluster::new(5);
        c.run(20_000, 100);
        let old = c.leaders()[0] as usize;
        assert!(c.nodes[old].propose(b"durable".to_vec()));
        c.run(2_000, 100);
        c.blocked[old] = true;
        c.run(30_000, 100);
        let new = c.leaders()[0] as usize;
        assert_ne!(new, old);
        assert!(c.nodes[new].propose(b"after".to_vec()));
        c.run(5_000, 100);
        let committed = c.nodes[new].take_committed();
        let datas: Vec<&[u8]> = committed.iter().map(|e| e.data.as_slice()).collect();
        assert!(datas.contains(&b"durable".as_slice()));
        assert!(datas.contains(&b"after".as_slice()));
        // "durable" must precede "after".
        let i = datas.iter().position(|d| *d == b"durable").unwrap();
        let j = datas.iter().position(|d| *d == b"after").unwrap();
        assert!(i < j);
    }

    #[test]
    fn follower_rejects_stale_term() {
        let mut n = RaftNode::new(0, vec![1], RaftConfig::default());
        n.term = 5;
        let out = n.on_message(
            1,
            RaftMsg::Append {
                term: 3,
                prev_log_index: 0,
                prev_log_term: 0,
                entries: vec![],
                leader_commit: 0,
            },
            0,
        );
        assert!(matches!(out[0].1, RaftMsg::AppendResp { ok: false, term: 5, .. }));
    }

    #[test]
    fn propose_on_follower_fails() {
        let mut n = RaftNode::new(0, vec![1, 2], RaftConfig::default());
        assert!(!n.propose(b"nope".to_vec()));
    }

    #[test]
    fn vote_denied_for_shorter_log() {
        let mut n = RaftNode::new(0, vec![1], RaftConfig::default());
        n.log.push(LogEntry { term: 1, data: vec![] });
        n.term = 1;
        let out = n.on_message(
            1,
            RaftMsg::RequestVote { term: 2, last_log_index: 0, last_log_term: 0 },
            0,
        );
        assert!(matches!(out[0].1, RaftMsg::Vote { granted: false, .. }));
    }
}
