//! Glue between the Raft log and the controller state machine: a
//! replicated, highly-available controller of which exactly one replica
//! (the Raft leader) is active at a time — the deployment shape the paper
//! assumes (§5.2, §6.1).

use crate::protocol::{ControllerCore, CtrlAction, CtrlEvent, FailureDomains};
use crate::raft::{RaftConfig, RaftMsg, RaftNode};
use onepipe_types::ids::ProcessId;

/// One replica of the replicated controller service.
///
/// Events are proposed into the Raft log; every replica applies committed
/// events to its [`ControllerCore`] (so any replica can take over with the
/// full state), but only the leader's actions are emitted.
pub struct ReplicatedController {
    raft: RaftNode,
    core: ControllerCore,
}

impl ReplicatedController {
    /// Create replica `id` among `peers`.
    pub fn new(
        id: u32,
        peers: Vec<u32>,
        cfg: RaftConfig,
        domains: FailureDomains,
        procs: impl IntoIterator<Item = ProcessId>,
    ) -> Self {
        ReplicatedController {
            raft: RaftNode::new(id, peers, cfg),
            core: ControllerCore::new(domains, procs),
        }
    }

    /// Whether this replica is the active controller.
    pub fn is_leader(&self) -> bool {
        self.raft.is_leader()
    }

    /// Replica id.
    pub fn id(&self) -> u32 {
        self.raft.id()
    }

    /// Read access to the underlying state machine.
    pub fn core(&self) -> &ControllerCore {
        &self.core
    }

    /// Submit an event. Returns `false` when this replica is not the
    /// leader (the caller should retry against the current leader).
    pub fn submit(&mut self, ev: CtrlEvent) -> bool {
        if !self.raft.is_leader() {
            return false;
        }
        self.raft.propose(ev.encode().to_vec())
    }

    /// Advance time: Raft housekeeping plus controller window expiry.
    /// Returns `(raft messages to deliver, controller actions)`.
    ///
    /// Unlike the standalone controller, window expiry does not announce
    /// directly: the leader proposes an [`CtrlEvent::AnnounceDecision`]
    /// into the log, and the announcement happens when it commits — so
    /// every replica applies identical state transitions.
    pub fn tick(&mut self, now: u64) -> (Vec<(u32, RaftMsg)>, Vec<CtrlAction>) {
        let msgs = self.raft.tick(now);
        let mut actions = self.drain_committed(now);
        if self.raft.is_leader() {
            for comp in self.core.expired_windows(now) {
                if self
                    .raft
                    .propose(CtrlEvent::AnnounceDecision { component: comp }.encode().to_vec())
                {
                    self.core.mark_decision_proposed(comp);
                }
            }
            // Single-replica clusters commit instantly.
            actions.extend(self.drain_committed(now));
        }
        (msgs, actions)
    }

    /// Handle a Raft message from a peer replica.
    pub fn on_raft_msg(
        &mut self,
        from: u32,
        msg: RaftMsg,
        now: u64,
    ) -> (Vec<(u32, RaftMsg)>, Vec<CtrlAction>) {
        let msgs = self.raft.on_message(from, msg, now);
        let actions = self.drain_committed(now);
        (msgs, actions)
    }

    fn drain_committed(&mut self, now: u64) -> Vec<CtrlAction> {
        let mut actions = Vec::new();
        let leader = self.raft.is_leader();
        for entry in self.raft.take_committed() {
            if let Ok(ev) = CtrlEvent::decode(entry.data.into()) {
                let a = self.core.apply(ev, now);
                if leader {
                    actions.extend(a);
                }
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onepipe_types::ids::NodeId;
    use onepipe_types::time::Timestamp;
    use std::collections::VecDeque;

    fn domains() -> FailureDomains {
        let mut d = FailureDomains::default();
        d.add_component(0, vec![NodeId(0)], vec![ProcessId(0)]);
        d
    }

    struct Cluster {
        replicas: Vec<ReplicatedController>,
        inflight: VecDeque<(u32, u32, RaftMsg)>,
        now: u64,
    }

    impl Cluster {
        fn new(n: u32) -> Self {
            let cfg = RaftConfig { election_timeout: 1_000, heartbeat_interval: 200 };
            let replicas = (0..n)
                .map(|i| {
                    let peers = (0..n).filter(|&p| p != i).collect();
                    ReplicatedController::new(
                        i,
                        peers,
                        cfg,
                        domains(),
                        [ProcessId(0), ProcessId(1), ProcessId(2)],
                    )
                })
                .collect();
            Cluster { replicas, inflight: VecDeque::new(), now: 0 }
        }

        fn run(&mut self, dt: u64) -> Vec<CtrlAction> {
            let mut actions = Vec::new();
            let end = self.now + dt;
            while self.now < end {
                self.now += 100;
                for i in 0..self.replicas.len() {
                    let (msgs, acts) = self.replicas[i].tick(self.now);
                    for (to, m) in msgs {
                        self.inflight.push_back((i as u32, to, m));
                    }
                    actions.extend(acts);
                }
                while let Some((from, to, m)) = self.inflight.pop_front() {
                    let (msgs, acts) = self.replicas[to as usize].on_raft_msg(from, m, self.now);
                    for (t2, m2) in msgs {
                        self.inflight.push_back((to, t2, m2));
                    }
                    actions.extend(acts);
                }
            }
            actions
        }

        fn leader(&self) -> usize {
            self.replicas.iter().position(|r| r.is_leader()).unwrap()
        }
    }

    #[test]
    fn replicated_failure_handling_end_to_end() {
        let mut c = Cluster::new(3);
        c.run(10_000);
        let leader = c.leader();
        assert!(c.replicas[leader].submit(CtrlEvent::Detect {
            reporter: NodeId(5),
            dead: NodeId(0),
            last_commit: Timestamp::from_nanos(42),
            at: c.now,
        }));
        let actions = c.run(60_000);
        // The leader announced to the two correct processes.
        let announces: Vec<_> =
            actions.iter().filter(|a| matches!(a, CtrlAction::Announce { .. })).collect();
        assert_eq!(announces.len(), 2);
        // Every replica applied the committed event.
        for r in &c.replicas {
            assert_eq!(
                r.core().failures().collect::<Vec<_>>(),
                vec![(ProcessId(0), Timestamp::from_nanos(42))]
            );
        }
    }

    #[test]
    fn replicated_matches_standalone_state_machine() {
        // The same committed event sequence must produce the same state
        // whether applied directly to a ControllerCore or through a
        // single-replica ReplicatedController.
        let events = vec![
            CtrlEvent::Detect {
                reporter: NodeId(5),
                dead: NodeId(0),
                last_commit: Timestamp::from_nanos(42),
                at: 0,
            },
            CtrlEvent::UndeliverableRecall {
                to: ProcessId(0),
                ts: Timestamp::from_nanos(99),
                seq: 4,
                sender: ProcessId(1),
            },
        ];
        // Standalone.
        let mut core = ControllerCore::new(domains(), [ProcessId(0), ProcessId(1), ProcessId(2)]);
        for ev in &events {
            core.apply(ev.clone(), 0);
        }
        core.tick(20_000);
        // Replicated, single node (instant commit).
        let mut rep = ReplicatedController::new(
            0,
            vec![],
            RaftConfig { election_timeout: 1_000, heartbeat_interval: 200 },
            domains(),
            [ProcessId(0), ProcessId(1), ProcessId(2)],
        );
        rep.tick(5_000); // elect itself
        assert!(rep.is_leader());
        for ev in &events {
            assert!(rep.submit(ev.clone()));
        }
        rep.tick(30_000);
        assert_eq!(core.failures().collect::<Vec<_>>(), rep.core().failures().collect::<Vec<_>>());
        assert_eq!(
            core.correct_processes().collect::<Vec<_>>(),
            rep.core().correct_processes().collect::<Vec<_>>()
        );
    }

    #[test]
    fn follower_rejects_submission() {
        let mut c = Cluster::new(3);
        c.run(10_000);
        let leader = c.leader();
        let follower = (0..3).find(|&i| i != leader).unwrap();
        assert!(!c.replicas[follower].submit(CtrlEvent::RecoveryRequest { proc: ProcessId(1) }));
    }
}
