//! Glue between the Raft log and the controller state machine: a
//! replicated, highly-available controller of which exactly one replica
//! (the Raft leader) is active at a time — the deployment shape the paper
//! assumes (§5.2, §6.1).

use crate::protocol::{ControllerCore, CtrlAction, CtrlEvent, FailureDomains};
use crate::raft::{RaftConfig, RaftMsg, RaftNode};
use onepipe_types::ids::ProcessId;

/// One replica of the replicated controller service.
///
/// Events are proposed into the Raft log; every replica applies committed
/// events to its [`ControllerCore`] (so any replica can take over with the
/// full state), but only the leader's actions are emitted.
pub struct ReplicatedController {
    raft: RaftNode,
    core: ControllerCore,
    /// Leadership edge detector: when this flips false→true the replica
    /// writes a [`CtrlEvent::NewEpoch`] barrier and prepares to re-drive
    /// in-flight recoveries once that barrier commits.
    was_leader: bool,
}

impl ReplicatedController {
    /// Create replica `id` among `peers`.
    pub fn new(
        id: u32,
        peers: Vec<u32>,
        cfg: RaftConfig,
        domains: FailureDomains,
        procs: impl IntoIterator<Item = ProcessId>,
    ) -> Self {
        ReplicatedController {
            raft: RaftNode::new(id, peers, cfg),
            core: ControllerCore::new(domains, procs),
            was_leader: false,
        }
    }

    /// Whether this replica is the active controller.
    pub fn is_leader(&self) -> bool {
        self.raft.is_leader()
    }

    /// Replica id.
    pub fn id(&self) -> u32 {
        self.raft.id()
    }

    /// The controller epoch: the Raft term of this replica. Actions are
    /// tagged with the emitting leader's epoch so receivers can fence off
    /// stale leaders.
    pub fn epoch(&self) -> u64 {
        self.raft.term()
    }

    /// Committed log length (for ack-on-commit client protocols).
    pub fn commit_index(&self) -> u64 {
        self.raft.commit_index()
    }

    /// Index of the last log entry (committed or not).
    pub fn last_log_index(&self) -> u64 {
        self.raft.last_log_index()
    }

    /// Best-known current leader (self when leading), for redirecting
    /// clients that contacted a follower.
    pub fn leader_hint(&self) -> Option<u32> {
        self.raft.leader_hint()
    }

    /// Read access to the underlying state machine.
    pub fn core(&self) -> &ControllerCore {
        &self.core
    }

    /// Submit an event. Returns `false` when this replica is not the
    /// leader (the caller should retry against the current leader).
    pub fn submit(&mut self, ev: CtrlEvent) -> bool {
        if !self.raft.is_leader() {
            return false;
        }
        self.raft.propose(ev.encode().to_vec())
    }

    /// Advance time: Raft housekeeping plus controller window expiry.
    /// Returns `(raft messages to deliver, controller actions)`.
    ///
    /// Unlike the standalone controller, window expiry does not announce
    /// directly: the leader proposes an [`CtrlEvent::AnnounceDecision`]
    /// into the log, and the announcement happens when it commits — so
    /// every replica applies identical state transitions.
    pub fn tick(&mut self, now: u64) -> (Vec<(u32, RaftMsg)>, Vec<CtrlAction>) {
        let msgs = self.raft.tick(now);
        self.leadership_check();
        let mut actions = self.drain_committed(now);
        if self.raft.is_leader() {
            for comp in self.core.expired_windows(now) {
                if self
                    .raft
                    .propose(CtrlEvent::AnnounceDecision { component: comp }.encode().to_vec())
                {
                    self.core.mark_decision_proposed(comp);
                }
            }
            // Single-replica clusters commit instantly.
            actions.extend(self.drain_committed(now));
        }
        (msgs, actions)
    }

    /// Handle a Raft message from a peer replica.
    pub fn on_raft_msg(
        &mut self,
        from: u32,
        msg: RaftMsg,
        now: u64,
    ) -> (Vec<(u32, RaftMsg)>, Vec<CtrlAction>) {
        let msgs = self.raft.on_message(from, msg, now);
        self.leadership_check();
        let actions = self.drain_committed(now);
        (msgs, actions)
    }

    /// React to leadership edges. On acquiring leadership the replica (a)
    /// forgets the previous leader's unlogged "decision proposed" flags so
    /// stalled Determine windows are re-proposed, and (b) writes a
    /// [`CtrlEvent::NewEpoch`] barrier whose commitment both surfaces
    /// surviving prior-term entries (Raft commits only current-term
    /// entries directly) and triggers the re-drive of in-flight
    /// recoveries.
    fn leadership_check(&mut self) {
        let leading = self.raft.is_leader();
        if leading && !self.was_leader {
            self.core.reset_decision_proposals();
            self.raft.propose(CtrlEvent::NewEpoch { term: self.raft.term() }.encode().to_vec());
        }
        self.was_leader = leading;
    }

    fn drain_committed(&mut self, now: u64) -> Vec<CtrlAction> {
        let mut actions = Vec::new();
        let leader = self.raft.is_leader();
        let term = self.raft.term();
        for entry in self.raft.take_committed() {
            let own_term = entry.term == term;
            if let Ok(ev) = CtrlEvent::decode(entry.data.into()) {
                // Re-drive exactly once per leadership: on our own epoch
                // barrier (older barriers replayed during catch-up must
                // not re-emit, or a single epoch would duplicate actions).
                let redrive = leader && matches!(ev, CtrlEvent::NewEpoch { term: t } if t == term);
                let a = self.core.apply(ev, now);
                if leader {
                    // A surviving prior-term entry (e.g. the old leader's
                    // AnnounceDecision) commits *under* our own barrier; it
                    // must mutate state silently, because the barrier's
                    // re-drive re-derives everything still owed — emitting
                    // its actions here too would send the same decision
                    // twice within one epoch.
                    if own_term {
                        actions.extend(a);
                    }
                    if redrive {
                        actions.extend(self.core.redrive_actions());
                    }
                }
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onepipe_types::ids::NodeId;
    use onepipe_types::time::Timestamp;
    use std::collections::VecDeque;

    fn domains() -> FailureDomains {
        let mut d = FailureDomains::default();
        d.add_component(0, vec![NodeId(0)], vec![ProcessId(0)]);
        d
    }

    struct Cluster {
        replicas: Vec<ReplicatedController>,
        inflight: VecDeque<(u32, u32, RaftMsg)>,
        blocked: Vec<bool>,
        now: u64,
    }

    impl Cluster {
        fn new(n: u32) -> Self {
            let cfg = RaftConfig { election_timeout: 1_000, heartbeat_interval: 200 };
            let replicas = (0..n)
                .map(|i| {
                    let peers = (0..n).filter(|&p| p != i).collect();
                    ReplicatedController::new(
                        i,
                        peers,
                        cfg,
                        domains(),
                        [ProcessId(0), ProcessId(1), ProcessId(2)],
                    )
                })
                .collect();
            Cluster {
                replicas,
                inflight: VecDeque::new(),
                blocked: vec![false; n as usize],
                now: 0,
            }
        }

        fn run(&mut self, dt: u64) -> Vec<CtrlAction> {
            let mut actions = Vec::new();
            let end = self.now + dt;
            while self.now < end {
                self.now += 100;
                for i in 0..self.replicas.len() {
                    if self.blocked[i] {
                        continue;
                    }
                    let (msgs, acts) = self.replicas[i].tick(self.now);
                    for (to, m) in msgs {
                        self.inflight.push_back((i as u32, to, m));
                    }
                    actions.extend(acts);
                }
                while let Some((from, to, m)) = self.inflight.pop_front() {
                    if self.blocked[from as usize] || self.blocked[to as usize] {
                        continue;
                    }
                    let (msgs, acts) = self.replicas[to as usize].on_raft_msg(from, m, self.now);
                    for (t2, m2) in msgs {
                        self.inflight.push_back((to, t2, m2));
                    }
                    actions.extend(acts);
                }
            }
            actions
        }

        fn leader(&self) -> usize {
            self.replicas
                .iter()
                .enumerate()
                .position(|(i, r)| r.is_leader() && !self.blocked[i])
                .unwrap()
        }
    }

    #[test]
    fn replicated_failure_handling_end_to_end() {
        let mut c = Cluster::new(3);
        c.run(10_000);
        let leader = c.leader();
        assert!(c.replicas[leader].submit(CtrlEvent::Detect {
            reporter: NodeId(5),
            dead: NodeId(0),
            last_commit: Timestamp::from_nanos(42),
            at: c.now,
        }));
        let actions = c.run(60_000);
        // The leader announced to the two correct processes.
        let announces: Vec<_> =
            actions.iter().filter(|a| matches!(a, CtrlAction::Announce { .. })).collect();
        assert_eq!(announces.len(), 2);
        // Every replica applied the committed event.
        for r in &c.replicas {
            assert_eq!(
                r.core().failures().collect::<Vec<_>>(),
                vec![(ProcessId(0), Timestamp::from_nanos(42))]
            );
        }
    }

    #[test]
    fn replicated_matches_standalone_state_machine() {
        // The same committed event sequence must produce the same state
        // whether applied directly to a ControllerCore or through a
        // single-replica ReplicatedController.
        let events = vec![
            CtrlEvent::Detect {
                reporter: NodeId(5),
                dead: NodeId(0),
                last_commit: Timestamp::from_nanos(42),
                at: 0,
            },
            CtrlEvent::UndeliverableRecall {
                to: ProcessId(0),
                ts: Timestamp::from_nanos(99),
                seq: 4,
                sender: ProcessId(1),
            },
        ];
        // Standalone.
        let mut core = ControllerCore::new(domains(), [ProcessId(0), ProcessId(1), ProcessId(2)]);
        for ev in &events {
            core.apply(ev.clone(), 0);
        }
        core.tick(20_000);
        // Replicated, single node (instant commit).
        let mut rep = ReplicatedController::new(
            0,
            vec![],
            RaftConfig { election_timeout: 1_000, heartbeat_interval: 200 },
            domains(),
            [ProcessId(0), ProcessId(1), ProcessId(2)],
        );
        rep.tick(5_000); // elect itself
        assert!(rep.is_leader());
        for ev in &events {
            assert!(rep.submit(ev.clone()));
        }
        rep.tick(30_000);
        assert_eq!(core.failures().collect::<Vec<_>>(), rep.core().failures().collect::<Vec<_>>());
        assert_eq!(
            core.correct_processes().collect::<Vec<_>>(),
            rep.core().correct_processes().collect::<Vec<_>>()
        );
    }

    #[test]
    fn failover_redrives_in_flight_recovery_exactly_once() {
        let mut c = Cluster::new(3);
        c.run(10_000);
        let old = c.leader();
        assert!(c.replicas[old].submit(CtrlEvent::Detect {
            reporter: NodeId(5),
            dead: NodeId(0),
            last_commit: Timestamp::from_nanos(42),
            at: c.now,
        }));
        // Let the Determine window close and the announcement commit, and
        // let one of the two survivors complete its callback.
        let actions = c.run(60_000);
        let id = actions
            .iter()
            .find_map(|a| match a {
                CtrlAction::Announce { id, .. } => Some(*id),
                _ => None,
            })
            .expect("old leader announced");
        assert!(c.replicas[old]
            .submit(CtrlEvent::CallbackComplete { announce_id: id, from: ProcessId(1) }));
        c.run(2_000);
        // Kill the old leader mid-recovery.
        c.blocked[old] = true;
        let actions = c.run(30_000);
        let new = c.leader();
        assert_ne!(new, old, "a different replica took over");
        let new_epoch = c.replicas[new].epoch();
        // The new leader re-announced, but only to the survivor that had
        // not completed (p2) — p1's completion committed before failover.
        let reannounces: Vec<_> = actions
            .iter()
            .filter_map(|a| match a {
                CtrlAction::Announce { id: i, to, .. } if *i == id => Some(*to),
                _ => None,
            })
            .collect();
        assert_eq!(reannounces, vec![ProcessId(2)]);
        // The last completion now finishes recovery: exactly one Resume.
        assert!(c.replicas[new]
            .submit(CtrlEvent::CallbackComplete { announce_id: id, from: ProcessId(2) }));
        let actions = c.run(10_000);
        let resumes = actions.iter().filter(|a| matches!(a, CtrlAction::Resume { .. })).count();
        assert_eq!(resumes, 1, "exactly one Resume in epoch {new_epoch}");
        // Every live replica converged on the failure.
        for (i, r) in c.replicas.iter().enumerate() {
            if i == old {
                continue;
            }
            assert_eq!(
                r.core().failures().collect::<Vec<_>>(),
                vec![(ProcessId(0), Timestamp::from_nanos(42))]
            );
            assert!(!r.core().has_pending());
        }
    }

    #[test]
    fn catchup_entries_do_not_duplicate_redrive_within_one_epoch() {
        // The old leader proposes an AnnounceDecision and replicates it to
        // the followers, but dies before the commit index reaches them.
        // The entry then commits *under* the new leader's NewEpoch barrier
        // — applying it must not emit announcements on top of the
        // barrier's re-drive, or one epoch delivers every decision twice.
        let mut c = Cluster::new(3);
        c.run(10_000);
        let old = c.leader();
        assert!(c.replicas[old].submit(CtrlEvent::Detect {
            reporter: NodeId(5),
            dead: NodeId(0),
            last_commit: Timestamp::from_nanos(42),
            at: c.now,
        }));
        // Step until the Determine window closes and the decision is
        // proposed (the leader's log grows past the Detect entry).
        let base = c.replicas[old].last_log_index();
        let mut steps = 0;
        while c.replicas[old].last_log_index() == base {
            c.run(100);
            steps += 1;
            assert!(steps < 1_000, "leader never proposed the announce decision");
        }
        // Step until the survivors hold the decision appended but not yet
        // committed (leader_commit piggybacks on the *next* heartbeat), a
        // window of up to one heartbeat interval — then crash the leader.
        let target = c.replicas[old].last_log_index();
        let mut steps = 0;
        while !(0..3).filter(|&i| i != old).all(|i| {
            c.replicas[i].last_log_index() >= target && c.replicas[i].commit_index() < target
        }) {
            c.run(100);
            steps += 1;
            assert!(steps < 100, "missed the appended-but-uncommitted window");
        }
        c.blocked[old] = true;
        let actions = c.run(60_000);
        let new = c.leader();
        assert_ne!(new, old, "a different replica took over");
        // Everything after the crash happens in the new leader's single
        // epoch: each (id, recipient) announcement must appear exactly once.
        let mut seen = std::collections::HashSet::new();
        let mut announced = 0;
        for a in &actions {
            if let CtrlAction::Announce { id, to, .. } = a {
                announced += 1;
                assert!(
                    seen.insert((*id, *to)),
                    "Announce({id}, {to:?}) duplicated within epoch {}",
                    c.replicas[new].epoch()
                );
            }
        }
        assert_eq!(announced, 2, "the new leader must announce to both correct processes");
    }

    #[test]
    fn follower_rejects_submission() {
        let mut c = Cluster::new(3);
        c.run(10_000);
        let leader = c.leader();
        let follower = (0..3).find(|&i| i != leader).unwrap();
        assert!(!c.replicas[follower].submit(CtrlEvent::RecoveryRequest { proc: ProcessId(1) }));
    }
}
